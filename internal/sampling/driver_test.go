package sampling

import (
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"

	"carriersense/internal/montecarlo"
	"carriersense/internal/rng"
)

// drive/noisy is a tunable-variance integrand: mean 5, stddev from
// params, monotone in its single uniform so the variance-reduction
// samplers bite.
func init() {
	montecarlo.RegisterKernel("drive/noisy", func(params json.RawMessage) (montecarlo.EvalFunc, error) {
		sd := 1.0
		if len(params) > 0 {
			if err := json.Unmarshal(params, &sd); err != nil {
				return nil, err
			}
		}
		return func(src *rng.Source, out []float64) {
			out[0] = 5 + sd*src.Normal(0, 1)
		}, nil
	})
}

func driveReq(sd float64, sampler string, samples int) montecarlo.Request {
	raw, _ := json.Marshal(sd)
	return montecarlo.Request{Kernel: "drive/noisy", Params: raw, Seed: 3, Samples: samples, Dim: 1, Sampler: sampler}
}

func TestDriverConvergesAndReports(t *testing.T) {
	d, err := NewDriver(nil, DriverOptions{RelErr: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	before := montecarlo.EvaluatedSamples()
	accs, err := d.EstimateVec(context.Background(), driveReq(1, Plain, 4_000_000))
	if err != nil {
		t.Fatal(err)
	}
	evaluated := montecarlo.EvaluatedSamples() - before
	if math.Abs(accs[0].Estimate().Mean-5) > 0.1 {
		t.Errorf("mean = %v, want ~5", accs[0].Estimate().Mean)
	}
	reports := d.Reports()
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	r := reports[0]
	if !r.Converged {
		t.Errorf("report not converged: %+v", r)
	}
	if r.RelErr > 0.005 {
		t.Errorf("achieved rel err %v above target", r.RelErr)
	}
	if r.Spent >= 4_000_000 {
		t.Errorf("driver spent the whole cap (%d); should stop early", r.Spent)
	}
	// Work done equals samples reported — the discarded probe included.
	if evaluated != int64(r.Spent) {
		t.Errorf("evaluated %d samples but reported %d spent", evaluated, r.Spent)
	}
	// Beyond the sub-shard probe, growth is whole shards only.
	if rest := r.Spent - probeSamples(Plain); r.Rounds > 1 && rest%montecarlo.ShardSize != 0 {
		t.Errorf("spent %d beyond the probe is not whole shards", rest)
	}
}

func TestDriverSurfacesCapped(t *testing.T) {
	d, err := NewDriver(nil, DriverOptions{RelErr: 1e-9, MaxSamples: 3 * montecarlo.ShardSize})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.EstimateVec(context.Background(), driveReq(1, Plain, 10*montecarlo.ShardSize)); err != nil {
		t.Fatal(err)
	}
	r := d.Reports()[0]
	if r.Converged {
		t.Errorf("impossible target reported as converged: %+v", r)
	}
	// An impossible target burns the probe and then the whole cap.
	if want := 3*montecarlo.ShardSize + probeSamples(Plain); r.Spent != want {
		t.Errorf("capped run spent %d, want probe+cap %d", r.Spent, want)
	}
}

func TestDriverDefaultsCapToRequestBudget(t *testing.T) {
	d, err := NewDriver(nil, DriverOptions{RelErr: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	budget := 2*montecarlo.ShardSize + 100 // deliberately not whole shards
	if _, err := d.EstimateVec(context.Background(), driveReq(1, Plain, budget)); err != nil {
		t.Fatal(err)
	}
	r := d.Reports()[0]
	if want := budget + probeSamples(Plain); r.Spent != want || r.Budget != budget {
		t.Errorf("spent %d under budget %d, want probe+budget %d", r.Spent, r.Budget, want)
	}
}

func TestDriverResultBitIdenticalToDirectRequest(t *testing.T) {
	// A driven plain estimation that spent n samples must equal the
	// one-shot Request{Samples: n} bit for bit: whole-shard growth plus
	// shard-order merging is exactly the same computation.
	d, err := NewDriver(nil, DriverOptions{RelErr: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := d.EstimateVec(context.Background(), driveReq(1, Plain, 4_000_000))
	if err != nil {
		t.Fatal(err)
	}
	r := d.Reports()[0]
	// Spent counts the discarded probe; the merged result covers the
	// whole-shard schedule only (or just the probe, had it converged).
	n := r.Spent
	if r.Rounds > 1 {
		n -= probeSamples(Plain)
	}
	direct, err := montecarlo.RunRequest(context.Background(), driveReq(1, Plain, n))
	if err != nil {
		t.Fatal(err)
	}
	if accs[0] != direct[0] {
		t.Errorf("driven result %+v != direct result %+v at n=%d", accs[0].State(), direct[0].State(), n)
	}
}

func TestDriverVarianceReductionSavesSamples(t *testing.T) {
	// The acceptance property at unit-test scale: on a monotone
	// integrand, antithetic and stratified reach the same relative
	// error target with fewer evaluated samples than plain.
	spent := map[string]int{}
	for _, sampler := range []string{Plain, Antithetic, Stratified} {
		d, err := NewDriver(nil, DriverOptions{RelErr: 0.002})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.EstimateVec(context.Background(), driveReq(1, sampler, 64_000_000)); err != nil {
			t.Fatal(err)
		}
		r := d.Reports()[0]
		if !r.Converged {
			t.Fatalf("sampler %s did not converge: %+v", sampler, r)
		}
		spent[sampler] = r.Spent
	}
	for _, sampler := range []string{Antithetic, Stratified} {
		if float64(spent[sampler]) > 0.75*float64(spent[Plain]) {
			t.Errorf("sampler %s spent %d samples, plain %d; want >= 25%% fewer", sampler, spent[sampler], spent[Plain])
		}
	}
}

func TestDriverPassesRangedRequestsThrough(t *testing.T) {
	// A FirstShard request is already a delta (this driver's own, or a
	// nested driver's); driving it again would double-grow.
	d, err := NewDriver(nil, DriverOptions{RelErr: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	req := driveReq(1, Plain, 2*montecarlo.ShardSize)
	req.FirstShard = 1
	if _, err := d.EstimateVec(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if len(d.Reports()) != 0 {
		t.Errorf("ranged request produced a point report; want pass-through")
	}
}

// countingExecutor records the requests the driver issues.
type countingExecutor struct {
	mu   sync.Mutex
	reqs []montecarlo.Request
}

func (c *countingExecutor) EstimateVec(ctx context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	c.mu.Lock()
	c.reqs = append(c.reqs, req)
	c.mu.Unlock()
	return montecarlo.RunRequest(ctx, req)
}

func TestDriverRoundScheduleIsDeterministicAndRanged(t *testing.T) {
	// The round schedule is what the cache keys on: a repeat run must
	// issue byte-identical requests, and every round after the first
	// must be a pure delta (FirstShard = shards already evaluated).
	runOnce := func() []montecarlo.Request {
		inner := &countingExecutor{}
		d, err := NewDriver(inner, DriverOptions{RelErr: 0.002})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.EstimateVec(context.Background(), driveReq(1, Plain, 64_000_000)); err != nil {
			t.Fatal(err)
		}
		return inner.reqs
	}
	first := runOnce()
	second := runOnce()
	if len(first) < 2 {
		t.Fatalf("test needs multiple rounds, got %d", len(first))
	}
	if len(first) != len(second) {
		t.Fatalf("round counts differ between identical runs: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Samples != second[i].Samples || first[i].FirstShard != second[i].FirstShard {
			t.Errorf("round %d differs between identical runs", i)
		}
	}
	// The probe leads: a sub-shard request at shard 0. After a miss the
	// whole-shard schedule restarts at shard 0 and is ranged from there.
	if first[0].Samples != probeSamples(Plain) || first[0].FirstShard != 0 {
		t.Errorf("first request %+v is not the probe (want %d samples at shard 0)", first[0], probeSamples(Plain))
	}
	prevShards := 0
	for i := 1; i < len(first); i++ {
		if first[i].FirstShard != prevShards {
			t.Errorf("round %d starts at shard %d, want %d (no re-evaluation)", i, first[i].FirstShard, prevShards)
		}
		prevShards = montecarlo.ShardCount(first[i].Samples)
	}
}

func TestDriverProbeConvergesSubShard(t *testing.T) {
	// A near-exact integrand (tiny sd) meets any reasonable target
	// inside the probe; the point's result must then BE the probe — a
	// plain sub-shard request, bit-identical to running it directly.
	d, err := NewDriver(nil, DriverOptions{RelErr: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := d.EstimateVec(context.Background(), driveReq(1e-6, Plain, 4_000_000))
	if err != nil {
		t.Fatal(err)
	}
	r := d.Reports()[0]
	p := probeSamples(Plain)
	if !r.Converged || r.Rounds != 1 || r.Spent != p {
		t.Fatalf("probe should have converged in one sub-shard round, got %+v", r)
	}
	direct, err := montecarlo.RunRequest(context.Background(), driveReq(1e-6, Plain, p))
	if err != nil {
		t.Fatal(err)
	}
	if accs[0] != direct[0] {
		t.Errorf("probe result %+v != direct result %+v", accs[0].State(), direct[0].State())
	}
}

func TestDriverNoProbeStartsAtWholeShards(t *testing.T) {
	// NoProbe (and MinSamples > 0, which implies it) restores the
	// whole-shard-only schedule.
	for _, opt := range []DriverOptions{
		{RelErr: 0.005, NoProbe: true},
		{RelErr: 0.005, MinSamples: 1},
	} {
		inner := &countingExecutor{}
		d, err := NewDriver(inner, opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.EstimateVec(context.Background(), driveReq(1e-6, Plain, 4_000_000)); err != nil {
			t.Fatal(err)
		}
		if got := inner.reqs[0].Samples; got != montecarlo.ShardSize {
			t.Errorf("opts %+v: first round has %d samples, want one whole shard", opt, got)
		}
		if r := d.Reports()[0]; r.Spent%montecarlo.ShardSize != 0 {
			t.Errorf("opts %+v: spent %d is not whole shards", opt, r.Spent)
		}
	}
}
