package sampling

// The convergence driver: a montecarlo.Executor decorator that
// replaces each fixed-budget estimation with geometrically growing
// whole-shard rounds until the primary component's relative standard
// error meets a target. It is the executor-seam generalization of
// montecarlo.MeanToRelErr's incremental shard-plan growth: because a
// shard's random stream depends only on (seed, index), round k+1 can
// be issued as a *ranged* request — Request.FirstShard pointing past
// the shards rounds 1..k already evaluated — and its accumulators
// merged after theirs, in shard order. No whole-shard sample is ever
// re-evaluated, on any executor: the in-process pool, a `cs serve`
// fleet, or the cache (where each round's delta request is its own
// cache entry, so a repeated convergence run replays the identical
// round schedule and hits on every one).
//
// Ahead of the whole-shard schedule sits one sub-shard *probe* round:
// a prefix of shard 0 sized to hold enough of the sampler's
// observation groups for an honest error estimate. A strong
// variance-reduction strategy (scrambled Sobol, control variates on a
// σ = 0 lane) often meets the target inside that prefix, and without
// the probe every such point would pay the full one-shard floor —
// the floor, not the integrand, would set its cost. A probe that
// converges IS the point's result (a plain Samples=p request,
// bit-identical on any executor); a probe that does not converge is
// discarded wholesale and the whole-shard schedule restarts at shard
// 0 — the one deliberate re-evaluation, bounded by the probe's size,
// which keeps every later round's ranged-request incrementality
// exact.

import (
	"context"
	"fmt"
	"sync"

	"carriersense/internal/montecarlo"
)

// DriverOptions configure a convergence driver.
type DriverOptions struct {
	// RelErr is the target relative standard error of the estimation's
	// primary component (component 0 — every kernel in internal/core
	// orders its headline quantity first). Must be > 0.
	RelErr float64
	// MaxSamples caps the per-point budget; 0 uses each request's own
	// Samples field as the cap (the scenario's configured budget), so
	// convergence can only save samples, never exceed the plan.
	MaxSamples int
	// MinSamples is the starting budget, rounded up to whole shards;
	// 0 starts at one shard (montecarlo.ShardSize samples).
	MinSamples int
	// Growth is the budget multiplier per round (rounded up to whole
	// shards); 0 means 2. Smaller factors track the true
	// samples-to-target more tightly at the cost of more rounds —
	// rounds are cheap, since each evaluates only its delta.
	Growth float64
	// NoProbe disables the sub-shard probe round; every point then
	// starts at the whole-shard floor. MinSamples > 0 also disables it
	// (an explicit starting budget is a statement that smaller rounds
	// are not wanted).
	NoProbe bool
}

// probeMinSamples floors the probe round: below this even a group-1
// sampler's error estimate is not worth acting on relative to the
// cost of re-evaluating the probe on a miss.
const probeMinSamples = 512

// probeGroups is how many observation groups a probe must hold: 16
// iid replicates put the standard error of the standard error near
// 18%, tight enough to trust a converged verdict.
const probeGroups = 16

// probeSamples sizes the probe round for a sampler, or returns 0 when
// no probe is worthwhile (a group so large the probe would approach a
// whole shard anyway, or an unknown sampler — the inner executor will
// report that properly).
func probeSamples(sampler string) int {
	g, err := montecarlo.SamplerGroup(sampler)
	if err != nil {
		return 0
	}
	p := probeGroups * g
	if p < probeMinSamples {
		p = probeMinSamples
	}
	if p >= montecarlo.ShardSize {
		return 0
	}
	return p
}

// PointReport records one driven estimation point — what a scenario's
// artifacts show per point: which sampler ran, what was spent, what
// error was achieved, and whether the target was actually reached
// (Converged false means the point hit its cap still above target,
// the distinction MeanToRelErr's callers historically could not see).
type PointReport struct {
	Kernel    string  `json:"kernel"`
	Sampler   string  `json:"sampler"`
	Seed      uint64  `json:"seed"`
	Dim       int     `json:"dim"`
	Budget    int     `json:"budget"`  // the cap this point ran under
	Spent     int     `json:"spent"`   // samples actually evaluated
	Rounds    int     `json:"rounds"`  // growth rounds issued
	RelErr    float64 `json:"rel_err"` // achieved primary-component relative error
	Target    float64 `json:"target"`
	Converged bool    `json:"converged"`
}

// Driver is the convergence-driving executor decorator. Safe for
// concurrent use; each EstimateVec drives its own rounds.
type Driver struct {
	inner montecarlo.Executor
	opt   DriverOptions

	mu     sync.Mutex
	points []PointReport
}

// localExecutor evaluates in-process; the default inner executor.
type localExecutor struct{}

func (localExecutor) EstimateVec(ctx context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	return montecarlo.RunRequest(ctx, req)
}

// NewDriver wraps inner (nil = the in-process pool) in a convergence
// driver.
func NewDriver(inner montecarlo.Executor, opt DriverOptions) (*Driver, error) {
	if opt.RelErr <= 0 {
		return nil, fmt.Errorf("sampling: driver needs a positive RelErr target, got %g", opt.RelErr)
	}
	if opt.Growth == 0 {
		opt.Growth = 2
	}
	if opt.Growth <= 1 {
		return nil, fmt.Errorf("sampling: driver growth factor must be > 1, got %g", opt.Growth)
	}
	if inner == nil {
		inner = localExecutor{}
	}
	return &Driver{inner: inner, opt: opt}, nil
}

// roundUpToShard rounds a sample count up to whole shards. Whole-shard
// rounds are what make incremental growth exact: shard i's stream is
// identical in every plan that includes it, so a finished shard is
// never re-entered, and the only partial shard a driven point can see
// is the final one of a cap-sized round.
func roundUpToShard(n int) int {
	if n < 1 {
		n = 1
	}
	return montecarlo.ShardCount(n) * montecarlo.ShardSize
}

// EstimateVec implements montecarlo.Executor. Ranged requests
// (FirstShard > 0) pass straight through: they are already someone's
// delta — driving them again would double-grow.
func (d *Driver) EstimateVec(ctx context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.FirstShard > 0 {
		return d.inner.EstimateVec(ctx, req)
	}
	cap := d.opt.MaxSamples
	if cap <= 0 {
		cap = req.Samples
	}
	n := roundUpToShard(montecarlo.ShardSize)
	if d.opt.MinSamples > 0 {
		n = roundUpToShard(d.opt.MinSamples)
	}
	if n > cap {
		n = cap
	}
	totals := make([]montecarlo.Accumulator, req.Dim)
	report := PointReport{
		Kernel:  req.Kernel,
		Sampler: req.Sampler,
		Seed:    req.Seed,
		Dim:     req.Dim,
		Budget:  cap,
		Target:  d.opt.RelErr,
	}
	if p := probeSamples(req.Sampler); !d.opt.NoProbe && d.opt.MinSamples == 0 && p > 0 && p < cap {
		probe := req
		probe.Samples = p
		probe.FirstShard = 0
		accs, err := d.inner.EstimateVec(ctx, probe)
		if err != nil {
			return nil, err
		}
		if len(accs) != req.Dim {
			return nil, fmt.Errorf("sampling: inner executor returned %d components, want %d", len(accs), req.Dim)
		}
		report.Rounds++
		report.Spent += p
		report.RelErr = accs[0].Estimate().RelErr()
		if report.RelErr <= d.opt.RelErr {
			report.Converged = true
			d.recordPoint(report)
			return accs, nil
		}
		// Probe missed: discard it entirely (totals stay empty) and
		// fall into the whole-shard schedule from shard 0. The probe's
		// samples are re-evaluated by round 1 — the bounded cost of
		// having tried to stop early.
	}
	prevShards := 0
	for {
		round := req
		round.Samples = n
		round.FirstShard = prevShards
		accs, err := d.inner.EstimateVec(ctx, round)
		if err != nil {
			return nil, err
		}
		if len(accs) != req.Dim {
			return nil, fmt.Errorf("sampling: inner executor returned %d components, want %d", len(accs), req.Dim)
		}
		for j := range totals {
			totals[j].Merge(accs[j])
		}
		report.Rounds++
		report.Spent += round.SampleSpan()
		report.RelErr = totals[0].Estimate().RelErr()
		if report.RelErr <= d.opt.RelErr {
			report.Converged = true
			break
		}
		if n >= cap {
			break
		}
		prevShards = montecarlo.ShardCount(n)
		next := roundUpToShard(int(float64(n) * d.opt.Growth))
		if next <= n {
			next = n + montecarlo.ShardSize
		}
		if next > cap {
			next = cap
		}
		n = next
	}
	d.recordPoint(report)
	return totals, nil
}

// recordPoint appends one finished point to the ledger and metrics.
func (d *Driver) recordPoint(report PointReport) {
	d.mu.Lock()
	d.points = append(d.points, report)
	d.mu.Unlock()
	mPoints.Inc()
	mRounds.Add(int64(report.Rounds))
	if report.Converged {
		mConverged.Inc()
	} else {
		mCapped.Inc()
	}
}

// Reports returns a copy of every point driven so far, in completion
// order.
func (d *Driver) Reports() []PointReport {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]PointReport(nil), d.points...)
}

// Summary aggregates the driver's points.
type Summary struct {
	Points    int `json:"points"`
	Spent     int `json:"spent"`
	Converged int `json:"converged"`
	Capped    int `json:"capped"`
}

// Summarize aggregates the reports so far.
func (d *Driver) Summarize() Summary {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := Summary{Points: len(d.points)}
	for _, p := range d.points {
		s.Spent += p.Spent
		if p.Converged {
			s.Converged++
		} else {
			s.Capped++
		}
	}
	return s
}
