package sampling

// The `cv` strategy: control variates over the kernels' registered
// σ = 0 quadrature twins (montecarlo/control.go holds the mechanism,
// internal/core the twins). As a *sampler* cv is the identity — raw
// shard streams, one observation per sample — because the variance
// reduction happens per sample inside the shard evaluator, driven by
// the (β, μ) coefficients the request carries in Request.Control.
// What this file adds is the coordinator-side half: the
// ControlVariates executor decorator that stamps those coefficients
// onto cv requests before they reach the convergence driver, the
// fleet, or the cache.
//
// The decorator sits *outside* the driver in the engine's chain, so a
// driven point's rounds all share one pilot β: the pilot runs once per
// (kernel, params, seed), its spec rides along every ranged round
// request, and the merged accumulators are states of one consistent
// adjusted variable.

import (
	"context"
	"fmt"
	"sync"

	"carriersense/internal/montecarlo"
	"carriersense/internal/rng"
)

// CV is the control-variate strategy name.
const CV = "cv"

func init() {
	montecarlo.RegisterSampler(CV, cvSampler{})
}

// cvSampler is stream-wise identical to plain; the name exists so the
// strategy is part of the request identity (wire, cache key) and so
// reports attribute the spend to cv. The adjustment itself comes from
// Request.Control.
type cvSampler struct{}

func (cvSampler) Group() int { return 1 }

func (cvSampler) Stream(n int, src *rng.Source) montecarlo.SampleStream {
	return rawSampleStream{src: src}
}

type rawSampleStream struct{ src *rng.Source }

func (r rawSampleStream) Next() *rng.Source { return r.src }

// PilotSamples is the control-coefficient pilot budget: a quarter
// shard of serial samples. β only needs a few percent accuracy — the
// residual variance is quadratic around the optimum, so a relative
// error ε in β costs only ~ε² of the reduction — and the clamp in
// montecarlo.PilotControl bounds the damage of a noisy ratio. Keeping
// the pilot sub-shard matters for the savings ledger: on the exact
// (σ = 0) lanes a cv point converges at the driver's probe round, and
// the pilot is most of what it pays.
const PilotSamples = montecarlo.ShardSize / 4

// ControlVariates is the executor decorator that equips cv-sampled
// requests with pilot-estimated control coefficients. Requests under
// any other sampler — and ranged or already-equipped cv requests —
// pass through untouched. Safe for concurrent use.
type ControlVariates struct {
	inner montecarlo.Executor

	mu    sync.Mutex
	specs map[string]*montecarlo.ControlSpec
	spent int
}

// NewControlVariates wraps inner (nil = the in-process pool) in the
// cv-equipping decorator.
func NewControlVariates(inner montecarlo.Executor) *ControlVariates {
	if inner == nil {
		inner = localExecutor{}
	}
	return &ControlVariates{inner: inner, specs: map[string]*montecarlo.ControlSpec{}}
}

// ControlFor returns the memoized control spec for a request, running
// the serial pilot on first sight of its (kernel, params, seed). The
// spec is a pure function of that key, so every coordinator — and a
// rerun hitting the cache — derives bit-identical coefficients.
func (c *ControlVariates) ControlFor(req montecarlo.Request) (*montecarlo.ControlSpec, error) {
	key := fmt.Sprintf("%s\x00%s\x00%d", req.Kernel, req.Params, req.Seed)
	c.mu.Lock()
	spec, ok := c.specs[key]
	c.mu.Unlock()
	if ok {
		return spec, nil
	}
	spec, err := montecarlo.PilotControl(req, PilotSamples)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if prev, raced := c.specs[key]; raced {
		spec = prev
	} else {
		c.specs[key] = spec
		c.spent += PilotSamples
	}
	c.mu.Unlock()
	return spec, nil
}

// PilotSpent returns the total samples the pilots have evaluated —
// the honesty term scenarios fold into their sampling spend.
func (c *ControlVariates) PilotSpent() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spent
}

// EstimateVec implements montecarlo.Executor.
func (c *ControlVariates) EstimateVec(ctx context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	if req.Sampler != CV || req.Control != nil || req.FirstShard > 0 {
		return c.inner.EstimateVec(ctx, req)
	}
	if !montecarlo.HasControlTwin(req.Kernel) {
		// No twin: cv degrades to plain sampling under the cv identity.
		return c.inner.EstimateVec(ctx, req)
	}
	spec, err := c.ControlFor(req)
	if err != nil {
		return nil, err
	}
	req.Control = spec
	return c.inner.EstimateVec(ctx, req)
}
