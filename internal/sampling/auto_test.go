package sampling

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"carriersense/internal/cache"
	"carriersense/internal/montecarlo"
)

func autoReq(samples int) montecarlo.Request {
	r := driveReq(1, Auto, samples)
	return r
}

// recordingExecutor remembers the sampler of every non-pilot request.
type recordingExecutor struct {
	inner    montecarlo.Executor
	samplers []string
}

func (r *recordingExecutor) EstimateVec(ctx context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	r.samplers = append(r.samplers, req.Sampler)
	return r.inner.EstimateVec(ctx, req)
}

func TestAutoResolvesDeterministically(t *testing.T) {
	run := func() (string, []PilotScore) {
		a := NewAuto(localExecutor{}, nil, NewControlVariates(nil), AutoOptions{Target: 0.005})
		if _, err := a.EstimateVec(context.Background(), autoReq(2*montecarlo.ShardSize)); err != nil {
			t.Fatal(err)
		}
		return a.Choices()["drive/noisy"], a.Scores()["drive/noisy"]
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 == "" || c1 != c2 {
		t.Errorf("choices differ between identical runs: %q vs %q", c1, c2)
	}
	if len(s1) != len(s2) {
		t.Fatalf("scoreboards differ in length: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Errorf("pilot score %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	// drive/noisy has no control twin, so cv must not be a candidate.
	for _, s := range s1 {
		if s.Sampler == CV {
			t.Error("cv piloted for a twinless kernel")
		}
	}
}

func TestAutoRewritesToWinnerOnly(t *testing.T) {
	rec := &recordingExecutor{inner: localExecutor{}}
	a := NewAuto(rec, nil, nil, AutoOptions{})
	if _, err := a.EstimateVec(context.Background(), autoReq(2*montecarlo.ShardSize)); err != nil {
		t.Fatal(err)
	}
	winner := a.Choices()["drive/noisy"]
	if winner == "" {
		t.Fatal("no winner resolved")
	}
	for _, s := range rec.samplers {
		if s == Auto {
			t.Error("the virtual auto name leaked past the scheduler")
		}
	}
	// A second request for the same kernel skips the pilots entirely.
	spent := a.PilotSpent()
	if _, err := a.EstimateVec(context.Background(), autoReq(montecarlo.ShardSize)); err != nil {
		t.Fatal(err)
	}
	if a.PilotSpent() != spent {
		t.Error("repeat request re-piloted a resolved kernel")
	}
}

func TestAutoResultBitIdenticalToFixedWinner(t *testing.T) {
	a := NewAuto(localExecutor{}, nil, nil, AutoOptions{})
	got, err := a.EstimateVec(context.Background(), autoReq(2*montecarlo.ShardSize))
	if err != nil {
		t.Fatal(err)
	}
	winner := a.Choices()["drive/noisy"]
	name := winner
	if name == Plain {
		name = ""
	}
	want, err := montecarlo.RunRequest(context.Background(), driveReq(1, name, 2*montecarlo.ShardSize))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Errorf("auto result != fixed %q result", winner)
	}
}

func TestAutoChoiceTablePersistsAndSkipsPilots(t *testing.T) {
	table := filepath.Join(t.TempDir(), "choices", "table.json")
	cold := NewAuto(localExecutor{}, nil, nil, AutoOptions{TablePath: table})
	if _, err := cold.EstimateVec(context.Background(), autoReq(2*montecarlo.ShardSize)); err != nil {
		t.Fatal(err)
	}
	if cold.PilotSpent() == 0 {
		t.Fatal("cold run piloted nothing")
	}
	raw, err := os.ReadFile(table)
	if err != nil {
		t.Fatalf("choice table not persisted: %v", err)
	}
	if !strings.Contains(string(raw), "\"key_epoch\"") {
		t.Errorf("table %s carries no epoch stamp", raw)
	}

	warm := NewAuto(localExecutor{}, nil, nil, AutoOptions{TablePath: table})
	if _, err := warm.EstimateVec(context.Background(), autoReq(2*montecarlo.ShardSize)); err != nil {
		t.Fatal(err)
	}
	if warm.PilotSpent() != 0 {
		t.Errorf("warm run spent %d pilot samples, want 0 (table hit)", warm.PilotSpent())
	}
	if warm.Choices()["drive/noisy"] != cold.Choices()["drive/noisy"] {
		t.Error("warm choice differs from the persisted one")
	}
}

func TestAutoChoiceTableInvalidatedByEpoch(t *testing.T) {
	table := filepath.Join(t.TempDir(), "table.json")
	stale, _ := json.Marshal(map[string]any{
		"key_epoch": cache.KeyEpoch - 1,
		"choices":   map[string]string{"drive/noisy": Stratified},
	})
	if err := os.WriteFile(table, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	a := NewAuto(localExecutor{}, nil, nil, AutoOptions{TablePath: table})
	if len(a.Choices()) != 0 {
		t.Errorf("stale-epoch table loaded: %v", a.Choices())
	}
	if _, err := a.EstimateVec(context.Background(), autoReq(2*montecarlo.ShardSize)); err != nil {
		t.Fatal(err)
	}
	if a.PilotSpent() == 0 {
		t.Error("stale table skipped the re-pilot")
	}
}

func TestExpectedCostChargesCVPilot(t *testing.T) {
	// A zero-variance cv candidate still costs its per-point β pilot;
	// a rival whose variance implies fewer samples than that must win.
	if cv, rival := expectedCost(CV, 0, 0.005), expectedCost(Sobol, 1e-5, 0.005); cv <= rival {
		t.Errorf("cv cost %v <= cheap rival %v; pilot surcharge missing", cv, rival)
	}
}
