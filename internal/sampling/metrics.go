package sampling

// Registry handles for the convergence driver. Incremented once per
// driven point (not per sample), so cost is negligible; the per-sample
// work is already counted by the montecarlo layer.

import "carriersense/internal/obs"

var (
	mPoints = obs.Default().Counter("cs_sampling_points_total",
		"Estimation points driven to a relative-error target.")
	mRounds = obs.Default().Counter("cs_sampling_rounds_total",
		"Geometric growth rounds issued across all driven points.")
	mConverged = obs.Default().Counter("cs_sampling_converged_total",
		"Driven points that reached their relative-error target.")
	mCapped = obs.Default().Counter("cs_sampling_capped_total",
		"Driven points that hit their sample cap still above target.")
)
