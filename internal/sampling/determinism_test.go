package sampling_test

// Cross-executor determinism for every sampler: a sampler-transformed
// estimation must produce bit-identical accumulators whether it runs
// on the in-process pool, on a `cs serve` worker fleet of any size, or
// through the result cache — the same contract PRs 1–3 pinned for
// plain sampling. External test package: it exercises the public
// surface the executors themselves use.

import (
	"context"
	"strings"
	"testing"

	"net/http/httptest"

	"carriersense/internal/cache"
	"carriersense/internal/core"
	"carriersense/internal/dist"
	"carriersense/internal/montecarlo"
	"carriersense/internal/sampling"
)

// averagesReq builds a real model-kernel request (the hot-path kernel
// every table and curve funnels through), exercising positions,
// shadowing, and the full fused draw order under each sampler.
func averagesReq(t *testing.T, sampler string, samples int) montecarlo.Request {
	t.Helper()
	req, ok := core.AveragesRequest(core.Params{Alpha: 3, SigmaDB: 8, NoiseDB: core.DefaultNoiseDB},
		55, 40, 55, 17, samples)
	if !ok {
		t.Fatal("default environment must have a serializable kernel identity")
	}
	req.Sampler = sampler
	return req
}

func estimate(t *testing.T, e montecarlo.Executor, req montecarlo.Request) []montecarlo.Accumulator {
	t.Helper()
	accs, err := e.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return accs
}

func assertSame(t *testing.T, label string, a, b []montecarlo.Accumulator) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d components", label, len(a), len(b))
	}
	for i := range a {
		if a[i].State() != b[i].State() {
			t.Errorf("%s: component %d differs: %+v vs %+v", label, i, a[i].State(), b[i].State())
		}
	}
}

func TestSamplersBitIdenticalAcrossExecutors(t *testing.T) {
	// Two workers, so the remote path actually splits the plan.
	srv1 := httptest.NewServer(dist.NewServer())
	defer srv1.Close()
	srv2 := httptest.NewServer(dist.NewServer())
	defer srv2.Close()
	hosts := []string{
		strings.TrimPrefix(srv1.URL, "http://"),
		strings.TrimPrefix(srv2.URL, "http://"),
	}

	for _, sampler := range []string{
		sampling.Plain, sampling.Antithetic, sampling.Stratified,
		sampling.Sobol, sampling.Halton, sampling.CV,
	} {
		req := averagesReq(t, sampler, 3*montecarlo.ShardSize+101)
		if sampler == sampling.CV {
			// The engine's cv decorator stamps the pilot coefficients
			// before a request travels; do the same so the spec itself
			// crosses the wire and the cache key space.
			spec, err := montecarlo.PilotControl(req, sampling.PilotSamples)
			if err != nil {
				t.Fatal(err)
			}
			req.Control = spec
		}

		local, err := montecarlo.RunRequest(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}

		remote, err := dist.NewRemote(hosts)
		if err != nil {
			t.Fatal(err)
		}
		assertSame(t, sampler+": remote vs local", estimate(t, remote, req), local)

		cached := cache.New(nil, cache.Options{Dir: t.TempDir()})
		assertSame(t, sampler+": cache miss vs local", estimate(t, cached, req), local)
		assertSame(t, sampler+": cache hit vs local", estimate(t, cached, req), local)
		if st := cached.Stats(); st.Hits != 1 || st.Misses != 1 {
			t.Errorf("%s: cache stats %+v, want 1 hit / 1 miss", sampler, st)
		}
	}
}

func TestDriverBitIdenticalAcrossExecutors(t *testing.T) {
	// The full adaptive stack: convergence driver over local, remote,
	// and caching executors must agree bit for bit — the driver's
	// delta requests travel the wire and the cache key space intact.
	srv := httptest.NewServer(dist.NewServer())
	defer srv.Close()

	for _, sampler := range []string{sampling.Plain, sampling.Antithetic, sampling.Sobol, sampling.CV} {
		req := averagesReq(t, sampler, 6*montecarlo.ShardSize)
		opts := sampling.DriverOptions{RelErr: 0.01, MaxSamples: 6 * montecarlo.ShardSize}
		// cv runs under the engine's decorator chain (cv outside the
		// driver), so every round of a point shares one pilot β.
		chain := func(d *sampling.Driver) montecarlo.Executor {
			if sampler == sampling.CV {
				return sampling.NewControlVariates(d)
			}
			return d
		}

		dLocal, err := sampling.NewDriver(nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		local := estimate(t, chain(dLocal), req)

		remote, err := dist.NewRemote([]string{strings.TrimPrefix(srv.URL, "http://")})
		if err != nil {
			t.Fatal(err)
		}
		dRemote, err := sampling.NewDriver(remote, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSame(t, sampler+": driven remote vs local", estimate(t, chain(dRemote), req), local)

		dir := t.TempDir()
		dCache1, err := sampling.NewDriver(cache.New(nil, cache.Options{Dir: dir}), opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSame(t, sampler+": driven cache fill vs local", estimate(t, chain(dCache1), req), local)

		// A second driven run over the same directory must replay the
		// identical round schedule and hit on every delta request.
		warm := cache.New(nil, cache.Options{Dir: dir})
		dCache2, err := sampling.NewDriver(warm, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSame(t, sampler+": driven cache replay vs local", estimate(t, chain(dCache2), req), local)
		if st := warm.Stats(); st.Misses != 0 {
			t.Errorf("%s: replayed convergence run missed the cache %d times (rounds: %d)",
				sampler, st.Misses, dCache2.Reports()[0].Rounds)
		}

		if dLocal.Reports()[0] != dRemote.Reports()[0] || dLocal.Reports()[0] != dCache2.Reports()[0] {
			t.Errorf("%s: per-point reports differ across executors:\n local %+v\nremote %+v\n cache %+v",
				sampler, dLocal.Reports()[0], dRemote.Reports()[0], dCache2.Reports()[0])
		}
	}
}
