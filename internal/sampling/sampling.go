// Package sampling is the adaptive sampling subsystem: named
// variance-reduction sampler strategies plus a convergence driver that
// steers per-point Monte Carlo budgets to a target relative error.
//
// The paper's carrier-sense results are Monte Carlo averages over
// shadowing and placement draws; after the fused-kernel work the
// dominant cost is no longer per-sample math but *how many* samples
// each point needs. This package attacks that on two axes:
//
//   - Sampler strategies (this file) change what each sample costs in
//     variance: `antithetic` mirrors the uniform stream pairwise so
//     monotone integrands (capacity vs distance, capacity vs
//     shadowing) cancel noise within each pair; `stratified` pins each
//     sample's primary uniform — the receiver's radial position draw —
//     to its own stratum of the shard, removing the between-strata
//     variance of that dimension. `plain` is montecarlo's built-in
//     identity strategy.
//   - The convergence driver (driver.go) changes how many samples each
//     estimation point buys: budgets grow geometrically, in whole
//     shards, until the primary component's relative standard error
//     meets the target — so easy points stop early and heavy-tailed
//     points keep going.
//
// Determinism contract: a strategy is a pure per-shard stream
// transform. All state lives in the per-shard SampleStream, sample
// order within a shard is sequential, and groups (antithetic pairs)
// never straddle shard boundaries because the group size divides
// montecarlo.ShardSize. The sampler name travels in
// montecarlo.Request — over the dist wire protocol and into the cache
// key — so a named strategy reproduces bit-identically local, on any
// `cs serve` fleet, and through `internal/cache`, at any parallelism.
package sampling

import (
	"fmt"
	"sort"

	"carriersense/internal/montecarlo"
	"carriersense/internal/rng"
)

// Strategy names registered by this package (montecarlo itself
// registers Plain, the identity).
const (
	Plain      = montecarlo.SamplerPlain
	Antithetic = "antithetic"
	Stratified = "stratified"
)

func init() {
	montecarlo.RegisterSampler(Antithetic, antitheticSampler{})
	montecarlo.RegisterSampler(Stratified, stratifiedSampler{})
}

// Names returns every registered sampler name, sorted — the CLI's
// `-sampler` vocabulary.
func Names() []string {
	names := montecarlo.SamplerNames()
	sort.Strings(names)
	return names
}

// Validate checks a CLI-supplied sampler name ("" is plain).
func Validate(name string) error {
	if !montecarlo.HasSampler(name) {
		return fmt.Errorf("sampling: unknown sampler %q (want one of %v)", name, Names())
	}
	return nil
}

// antitheticSampler mirrors the uniform stream pairwise: the even
// sample of each pair records every uniform it consumes, the odd
// sample replays them as 1−u. Every variate is drawn through rng's
// inverse transforms (montonic in the uniform), so the odd sample's
// variates are componentwise monotone-mirrored — near receiver
// becomes far receiver, deep shadow becomes strong signal — and the
// pair's mean cancels the monotone part of the integrand's noise.
// Pairs are folded into the accumulator as one observation (Group
// 2), so the tracked standard error sees the within-pair covariance;
// a plain Welford pass over the individual samples would hide
// exactly the variance the mirroring removes.
type antitheticSampler struct{}

func (antitheticSampler) Group() int { return 2 }

func (antitheticSampler) Stream(n int, src *rng.Source) montecarlo.SampleStream {
	st := &antitheticStream{raw: src}
	st.record = rng.WithUniforms(func() float64 {
		u := st.raw.Float64()
		st.rec = append(st.rec, u)
		return u
	})
	st.replay = rng.WithUniforms(func() float64 {
		if st.idx < len(st.rec) {
			u := st.rec[st.idx]
			st.idx++
			// WithUniforms requires [0, 1); a recorded u of exactly 0
			// would mirror to 1.0 and drive the inverse transforms that
			// use log(1-u) (Exp, Rayleigh) to infinity, poisoning the
			// shard accumulator. Clamp one ulp below 1.
			if m := 1 - u; m < 1 {
				return m
			}
			return 1 - 0x1p-53
		}
		// The mirrored sample consumed more uniforms than its partner
		// recorded (possible only for integrands whose draw count
		// depends on the values drawn); continue with fresh raw draws —
		// still deterministic, just not mirrored for the excess.
		return st.raw.Float64()
	})
	return st
}

// antitheticStream is the per-shard pairing state. The raw source is
// only advanced by even samples (and by replay overruns), so the
// pairing — and therefore the result — is a pure function of the
// shard stream.
type antitheticStream struct {
	raw    *rng.Source
	rec    []float64 // uniforms consumed by the current pair's even sample
	idx    int       // replay cursor into rec
	even   bool      // flipped by Next; starts false so the first call is "even"
	record *rng.Source
	replay *rng.Source
}

func (st *antitheticStream) Next() *rng.Source {
	st.even = !st.even
	if st.even {
		st.rec = st.rec[:0]
		return st.record
	}
	st.idx = 0
	return st.replay
}

// StratifiedBlock is the stratification cycle length: consecutive
// blocks of this many samples each cover all StratifiedBlock equal
// strata of the primary dimension, and each complete block folds into
// the accumulator as one observation. The block is the unit of both
// the variance reduction and its *measurement*: block means are iid
// (every block is a complete stratification over fresh draws), so the
// tracked standard error reflects only the within-stratum variance —
// a plain Welford pass over the individual, deliberately
// non-identically-distributed samples would still show the
// between-strata spread the strategy removed, and the convergence
// driver would never see the improvement. 64 strata capture
// essentially all of a smooth dimension's between-strata variance
// (the residual shrinks as 1/B²) while leaving 64 observations per
// shard for the error estimate.
const StratifiedBlock = 64

// stratifiedSampler stratifies the primary dimension in 64-sample
// blocks: the first uniform of the p-th sample of each block is
// remapped from u to (p+u)/64, pinning it inside the p-th stratum.
// For the model's kernels the first uniform is the receiver's radial
// position draw (geometry.UniformInDisc draws radius as R·sqrt(u)
// first), the dominant variance axis of every capacity integrand.
// All later uniforms pass through untransformed (but, as with every
// uniform-hooked source, variates derive from them by inverse
// transforms). A trailing partial block — possible only in a plan's
// partial last shard — falls back to unstratified draws so its
// observation stays an unbiased mean rather than covering only the
// low strata.
type stratifiedSampler struct{}

func (stratifiedSampler) Group() int { return StratifiedBlock }

func (stratifiedSampler) Stream(n int, src *rng.Source) montecarlo.SampleStream {
	st := &stratifiedStream{raw: src, full: n - n%StratifiedBlock, i: -1}
	st.derived = rng.WithUniforms(func() float64 {
		u := st.raw.Float64()
		if st.first {
			st.first = false
			if st.i < st.full {
				return (float64(st.i%StratifiedBlock) + u) / StratifiedBlock
			}
		}
		return u
	})
	return st
}

// stratifiedStream carries the per-shard sample counter.
type stratifiedStream struct {
	raw     *rng.Source
	full    int // samples covered by complete blocks; the tail is unstratified
	i       int
	first   bool
	derived *rng.Source
}

func (st *stratifiedStream) Next() *rng.Source {
	st.i++
	st.first = true
	return st.derived
}
