package sampling

// Quasi-Monte Carlo strategies: `sobol` (scrambled Sobol, the
// workhorse) and `halton` (rotated Halton, the any-dimension
// fallback). Both replace the iid uniform stream with low-discrepancy
// point blocks under the same rng.WithUniforms hook the antithetic
// and stratified strategies use — kernels are untouched, and every
// variate still derives from the points by inverse transforms.
//
// The block is the randomization unit: each block draws fresh
// scramble randomness (a digital shift per Sobol dimension, a
// Cranley-Patterson rotation per Halton dimension) from the shard's
// raw stream, so block means are iid randomized-QMC replicates and
// the accumulator's standard error is an honest convergence signal —
// exactly the stratified-sampler argument, with the whole point set
// equidistributed instead of one pinned dimension. Because the
// scramble words come from the shard's own deterministic stream, a
// QMC shard remains a pure function of (seed, shard index): bit-
// identical serial, parallel, on a fleet, and through the cache.

import (
	"carriersense/internal/montecarlo"
	"carriersense/internal/rng"
)

// QMC strategy names.
const (
	Sobol  = "sobol"
	Halton = "halton"
)

func init() {
	montecarlo.RegisterSampler(Sobol, sobolSampler{})
	montecarlo.RegisterSampler(Halton, haltonSampler{})
}

// SobolBlock is the Sobol randomization cycle: each block of this
// many consecutive samples is one digitally-shifted Sobol point set,
// folded into the accumulator as a single observation. A power of two
// so every complete block is a full net prefix in Gray-code order.
// 64 points already drive the within-block error well below the
// Monte Carlo rate for the model's smooth disc integrands, while
// keeping enough block observations per round for a trustworthy
// error estimate — in particular the convergence driver's sub-shard
// probe round still sees 16 iid replicates, which is what lets a
// converged-at-probe point stop at a fraction of a shard. A trailing
// partial block (a plan's partial last shard) stays unbiased — the
// digital shift makes every individual point uniform — it just
// carries less of the equidistribution benefit.
const SobolBlock = 64

// sobolSampler enumerates scrambled Sobol blocks. The first
// rng.SobolMaxDim uniforms of each sample are the point's
// coordinates; a sample consuming more (no current kernel does — the
// heaviest draws 9) continues on the raw stream, deterministically.
type sobolSampler struct{}

func (sobolSampler) Group() int { return SobolBlock }

func (sobolSampler) Stream(n int, src *rng.Source) montecarlo.SampleStream {
	st := &sobolStream{raw: src, i: -1}
	st.derived = rng.WithUniforms(func() float64 {
		if st.dim < rng.SobolMaxDim {
			u := st.pts.Coord(st.dim)
			st.dim++
			return u
		}
		return st.raw.Float64()
	})
	return st
}

// sobolStream is the per-shard block state: the current point block
// and the intra-sample dimension cursor.
type sobolStream struct {
	raw     *rng.Source
	pts     *rng.Sobol
	i       int // sample index within the shard
	dim     int // next coordinate of the current point
	derived *rng.Source
}

func (st *sobolStream) Next() *rng.Source {
	st.i++
	if st.i%SobolBlock == 0 {
		// Fresh block: draw its digital shift from the raw shard
		// stream, then start at point 0 (= the shift itself).
		var shift [rng.SobolMaxDim]uint32
		for d := range shift {
			shift[d] = uint32(st.raw.Uint64() >> 32)
		}
		st.pts = rng.NewSobol(&shift)
	} else {
		st.pts.Next()
	}
	st.dim = 0
	return st.derived
}

// HaltonBlock is the Halton randomization cycle. Halton's projections
// degrade faster than Sobol's with block length (the high prime bases
// stripe), so blocks are shorter: 64 samples per rotation, 64
// observations per shard.
const HaltonBlock = 64

// haltonSampler enumerates Cranley-Patterson-rotated Halton blocks:
// sample p of a block is Halton point p, each coordinate rotated by a
// per-block, per-dimension uniform offset drawn from the raw shard
// stream. Dimensions beyond rng.HaltonMaxDim fall back to raw draws.
type haltonSampler struct{}

func (haltonSampler) Group() int { return HaltonBlock }

func (haltonSampler) Stream(n int, src *rng.Source) montecarlo.SampleStream {
	st := &haltonStream{raw: src, i: -1}
	st.derived = rng.WithUniforms(func() float64 {
		if st.dim < rng.HaltonMaxDim {
			u := rng.HaltonCoord(st.dim, st.idx, st.rot[st.dim])
			st.dim++
			return u
		}
		return st.raw.Float64()
	})
	return st
}

// haltonStream is the per-shard rotation state.
type haltonStream struct {
	raw     *rng.Source
	rot     [rng.HaltonMaxDim]float64
	i       int    // sample index within the shard
	idx     uint32 // point index within the current block
	dim     int    // next coordinate of the current point
	derived *rng.Source
}

func (st *haltonStream) Next() *rng.Source {
	st.i++
	if st.i%HaltonBlock == 0 {
		for d := range st.rot {
			st.rot[d] = st.raw.Float64()
		}
		st.idx = 0
	} else {
		st.idx++
	}
	st.dim = 0
	return st.derived
}
