package sampling

import (
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"

	"carriersense/internal/montecarlo"
	"carriersense/internal/rng"
)

// Probe kernels: capture the per-sample draw values so tests can see
// the sampler-transformed stream. Evaluations are recorded in sample
// order by pinning the pool to one worker.
var (
	probeMu  sync.Mutex
	probeLog []float64
)

func resetProbe() {
	probeMu.Lock()
	probeLog = probeLog[:0]
	probeMu.Unlock()
}

func probeValues() []float64 {
	probeMu.Lock()
	defer probeMu.Unlock()
	return append([]float64(nil), probeLog...)
}

func init() {
	// probe/first: records the sample's first uniform.
	montecarlo.RegisterKernel("probe/first", func(params json.RawMessage) (montecarlo.EvalFunc, error) {
		return func(src *rng.Source, out []float64) {
			u := src.Float64()
			probeMu.Lock()
			probeLog = append(probeLog, u)
			probeMu.Unlock()
			out[0] = u
		}, nil
	})
	// probe/mixed: consumes a uniform and a normal, like a real
	// integrand with position and shadowing draws.
	montecarlo.RegisterKernel("probe/mixed", func(params json.RawMessage) (montecarlo.EvalFunc, error) {
		return func(src *rng.Source, out []float64) {
			u := src.Float64()
			z := src.Normal(0, 1)
			probeMu.Lock()
			probeLog = append(probeLog, u, z)
			probeMu.Unlock()
			out[0] = u + z
		}, nil
	})
}

func sequential(t *testing.T) {
	t.Helper()
	if err := montecarlo.SetMaxWorkers(1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(montecarlo.ResetMaxWorkers)
}

func runProbe(t *testing.T, kernel, sampler string, seed uint64, samples int) []montecarlo.Accumulator {
	t.Helper()
	resetProbe()
	accs, err := montecarlo.RunRequest(context.Background(), montecarlo.Request{
		Kernel: kernel, Seed: seed, Samples: samples, Dim: 1, Sampler: sampler,
	})
	if err != nil {
		t.Fatal(err)
	}
	return accs
}

func TestAntitheticPairsMirrorUniforms(t *testing.T) {
	sequential(t)
	const n = 2*montecarlo.ShardSize + 10 // spans three shards, last one partial and odd-ish
	runProbe(t, "probe/first", Antithetic, 7, n)
	us := probeValues()
	if len(us) != n {
		t.Fatalf("recorded %d draws, want %d", len(us), n)
	}
	// Pairing restarts per shard; within every shard, sample 2k+1
	// replays 1-u of sample 2k. ShardSize is even, so pairs never
	// straddle a shard boundary — including around the boundaries at
	// ShardSize and 2*ShardSize.
	for start := 0; start < n; start += montecarlo.ShardSize {
		end := start + montecarlo.ShardSize
		if end > n {
			end = n
		}
		for i := start; i+1 < end; i += 2 {
			if got, want := us[i+1], 1-us[i]; got != want {
				t.Fatalf("sample %d = %v, want mirror %v of sample %d", i+1, got, want, i)
			}
		}
	}
}

func TestAntitheticPairingSurvivesIncrementalGrowth(t *testing.T) {
	// The convergence driver grows budgets in whole shards, so a
	// driven antithetic run is a sequence of ranged requests. The
	// concatenated draw stream must pair exactly like the one-shot
	// run: same shards, same streams, same pairing.
	sequential(t)
	const total = 3 * montecarlo.ShardSize
	runProbe(t, "probe/first", Antithetic, 21, total)
	oneShot := probeValues()

	resetProbe()
	for _, round := range []struct{ samples, first int }{
		{montecarlo.ShardSize, 0}, {2 * montecarlo.ShardSize, 1}, {total, 2},
	} {
		if _, err := montecarlo.RunRequest(context.Background(), montecarlo.Request{
			Kernel: "probe/first", Seed: 21, Samples: round.samples, Dim: 1,
			Sampler: Antithetic, FirstShard: round.first,
		}); err != nil {
			t.Fatal(err)
		}
	}
	grown := probeValues()
	if len(grown) != len(oneShot) {
		t.Fatalf("grown run recorded %d draws, one-shot %d", len(grown), len(oneShot))
	}
	for i := range oneShot {
		if oneShot[i] != grown[i] {
			t.Fatalf("draw %d differs: one-shot %v, grown %v", i, oneShot[i], grown[i])
		}
	}
}

func TestAntitheticMirrorsNormalsViaInverseCDF(t *testing.T) {
	sequential(t)
	runProbe(t, "probe/mixed", Antithetic, 11, 64)
	vals := probeValues() // u0, z0, u1, z1, ...
	for i := 0; i+3 < len(vals); i += 4 {
		uEven, zEven, uOdd, zOdd := vals[i], vals[i+1], vals[i+2], vals[i+3]
		if uOdd != 1-uEven {
			t.Fatalf("pair %d: uniform not mirrored", i/4)
		}
		// Φ⁻¹(1-u) = -Φ⁻¹(u); the quantile is antisymmetric, so the
		// mirrored normal is the negation (within the quantile's own
		// numeric symmetry).
		if math.Abs(zOdd+zEven) > 1e-8 {
			t.Fatalf("pair %d: normals %v and %v are not antithetic", i/4, zEven, zOdd)
		}
	}
}

func TestAntitheticAccumulatesPairMeans(t *testing.T) {
	sequential(t)
	accs := runProbe(t, "probe/first", Antithetic, 13, montecarlo.ShardSize)
	if got, want := accs[0].N(), montecarlo.ShardSize/2; got != want {
		t.Fatalf("accumulator N = %d, want %d pair observations", got, want)
	}
	// Each pair mean is (u + 1-u)/2 = 1/2 exactly, so the estimate is
	// exact with zero variance: the degenerate best case of antithetic
	// cancellation on a monotone integrand.
	est := accs[0].Estimate()
	if est.Mean != 0.5 || est.StdErr != 0 {
		t.Fatalf("pair-mean estimate = %+v, want exactly {0.5, 0}", est)
	}
}

func TestStratifiedBlocksCoverStrata(t *testing.T) {
	sequential(t)
	const n = montecarlo.ShardSize + StratifiedBlock + 7 // partial last shard with a partial tail block
	runProbe(t, "probe/first", Stratified, 5, n)
	us := probeValues()
	if len(us) != n {
		t.Fatalf("recorded %d draws, want %d", len(us), n)
	}
	for start := 0; start < n; start += montecarlo.ShardSize {
		end := start + montecarlo.ShardSize
		if end > n {
			end = n
		}
		shardN := end - start
		full := shardN - shardN%StratifiedBlock
		for i := start; i < end; i++ {
			p := i - start
			u := us[i]
			if p < full {
				lo := float64(p%StratifiedBlock) / StratifiedBlock
				hi := lo + 1.0/StratifiedBlock
				if u < lo || u >= hi {
					t.Fatalf("sample %d: draw %v outside its stratum [%v,%v)", i, u, lo, hi)
				}
			} else if u < 0 || u >= 1 {
				// Tail block: unstratified, just a plain uniform.
				t.Fatalf("tail sample %d: draw %v outside [0,1)", i, u)
			}
		}
	}
}

func TestStratifiedAccumulatesBlockMeans(t *testing.T) {
	sequential(t)
	accs := runProbe(t, "probe/first", Stratified, 5, montecarlo.ShardSize)
	if got, want := accs[0].N(), montecarlo.ShardSize/StratifiedBlock; got != want {
		t.Fatalf("accumulator N = %d, want %d block observations", got, want)
	}
	est := accs[0].Estimate()
	if math.Abs(est.Mean-0.5) > 0.01 {
		t.Fatalf("stratified mean of U(0,1) = %v, want ~0.5", est.Mean)
	}
	// Stratification bounds each block mean to 1/2 ± the within-stratum
	// spread, so the block-mean standard error must be far below the
	// plain-sampling σ/√n for the same draws.
	plain := runProbe(t, "probe/first", Plain, 5, montecarlo.ShardSize)
	if est.StdErr >= plain[0].Estimate().StdErr/4 {
		t.Fatalf("stratified StdErr %v not well below plain %v", est.StdErr, plain[0].Estimate().StdErr)
	}
}

func TestSamplersDeterministicAcrossParallelism(t *testing.T) {
	for _, sampler := range []string{Plain, Antithetic, Stratified} {
		var base []montecarlo.Accumulator
		for _, workers := range []int{1, 3, 8} {
			if err := montecarlo.SetMaxWorkers(workers); err != nil {
				t.Fatal(err)
			}
			accs, err := montecarlo.RunRequest(context.Background(), montecarlo.Request{
				Kernel: "probe/first", Seed: 99, Samples: 5*montecarlo.ShardSize + 123, Dim: 1, Sampler: sampler,
			})
			montecarlo.ResetMaxWorkers()
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = accs
				continue
			}
			if accs[0] != base[0] {
				t.Errorf("sampler %s: result at %d workers differs from 1 worker", sampler, workers)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	for _, name := range []string{"", Plain, Antithetic, Stratified} {
		if err := Validate(name); err != nil {
			t.Errorf("Validate(%q) = %v", name, err)
		}
	}
	if err := Validate("latin-hypercube"); err == nil {
		t.Error("Validate accepted an unregistered sampler")
	}
}
