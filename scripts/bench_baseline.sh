#!/usr/bin/env bash
# Benchmark baseline snapshot: run the -short bench lane once and emit
# BENCH_<date>.json — one record per benchmark with ns/op and every
# custom metric, plus a samples-to-target lane comparing the sampler
# strategies (plain vs antithetic vs stratified) at a fixed relative
# error — so the repo's performance trajectory is tracked run-over-run.
# CI executes this and uploads the JSON as an artifact; locally:
#
#   scripts/bench_baseline.sh            # writes BENCH_YYYYMMDD.json
#   scripts/bench_baseline.sh out.json   # explicit output path
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date -u +%Y%m%d).json}"
raw=$(mktemp)
bench_json=$(mktemp)
csbin=$(mktemp -d)/cs
trap 'rm -f "$raw" "$bench_json"; rm -rf "$(dirname "$csbin")"' EXIT

go test -short -run '^$' -bench . -benchtime 1x -benchmem . | tee "$raw"

awk '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)           # strip the GOMAXPROCS suffix
    iters = $2
    ns = ""
    metrics = ""
    for (i = 3; i < NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (unit == "ns/op") { ns = val; continue }
        gsub(/"/, "", unit)
        metrics = metrics sprintf("%s\"%s\": %s", (metrics == "" ? "" : ", "), unit, val)
    }
    recs[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"metrics\": {%s}}",
                        name, iters, (ns == "" ? "null" : ns), metrics)
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu); print cpu > "/dev/stderr" }
END {
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
    printf "  ],\n"
}' "$raw" > "$bench_json"

# Simulator lane: the packet-level hot path's headline numbers, pulled
# from the bench run above — raw event throughput (events/sec and
# allocations per event from the self-rescheduling workload), the cost
# of one simulated second of a saturated two-pair scenario, and the
# heaviest sim-bound benchmark (the preamble-vs-energy CCA ablation).
# The tenfold-alloc-reduction and 4x wall-clock targets of the hot-path
# overhaul are tracked here run-over-run.
bench_metric() { # <bench name> <unit> -> value ("null" if absent)
    awk -v b="$1" -v u="$2" '
        $1 ~ "^"b"(-[0-9]+)?$" {
            for (i = 3; i < NF; i += 2) if ($(i + 1) == u) { print $i; exit }
        }' "$raw" | grep . || echo null
}
events_per_sec=$(bench_metric BenchmarkSimulatorEventThroughput "events/sec")
event_allocs=$(bench_metric BenchmarkSimulatorEventThroughput "allocs/op")
event_ns=$(bench_metric BenchmarkSimulatorEventThroughput "ns/op")
# events/op = events/sec × seconds/op, so the event count never needs
# hard-coding here even if the benchmark's workload size changes.
allocs_per_event=$(awk -v a="$event_allocs" -v eps="$events_per_sec" -v ns="$event_ns" \
    'BEGIN{ if (a == "null" || eps == "null" || ns == "null") print "null"; else printf "%.6f", a/(eps*ns/1e9) }')
pkt_ns=$(bench_metric BenchmarkPacketSimSecond "ns/op")
pkt_allocs=$(bench_metric BenchmarkPacketSimSecond "allocs/op")
abl_ns=$(bench_metric BenchmarkAblationPreambleVsEnergyCCA "ns/op")
echo "sim lane: $events_per_sec events/sec, $allocs_per_event allocs/event, packet-sim second ${pkt_ns}ns"
sim_json="  \"sim\": {\n"
sim_json+="    \"events_per_sec\": $events_per_sec,\n"
sim_json+="    \"allocs_per_event\": $allocs_per_event,\n"
sim_json+="    \"packet_sim_second_ns\": $pkt_ns,\n"
sim_json+="    \"packet_sim_second_allocs\": $pkt_allocs,\n"
sim_json+="    \"ablation_preamble_vs_energy_ns\": $abl_ns\n"
sim_json+="  },\n"

go build -o "$csbin" ./cmd/cs

# Distributed lane: the per-shard cost of the three execution paths —
# in-process, the JSON fallback wire, and the binary frame wire — from
# the BenchmarkDistributedVsLocal sub-benchmarks above, plus the cache
# hit rate a plan-driven prefetch pass achieves (run cold: -prefetch
# warms the cache, then the real run should be all hits). The binary
# wire's remote tax over local is the number the streaming protocol is
# accountable for run-over-run.
local_us=$(bench_metric "BenchmarkDistributedVsLocal/local" "us/shard")
json2_us=$(bench_metric "BenchmarkDistributedVsLocal/remote-2workers/json" "us/shard")
bin2_us=$(bench_metric "BenchmarkDistributedVsLocal/remote-2workers/binary" "us/shard")
json5_us=$(bench_metric "BenchmarkDistributedVsLocal/remote-5workers/json" "us/shard")
bin5_us=$(bench_metric "BenchmarkDistributedVsLocal/remote-5workers/binary" "us/shard")

# Two processes on one cold cache dir: the first only prefetches (its
# own stats would mix the warming misses into the rate), the second is
# the "real run" — its hit rate is what the prefetch bought.
prefetch_dir=$(mktemp -d)
prefetch_log=$(mktemp)
"$csbin" run curves -scale smoke -seed 7 \
    -cache -cache-dir "$prefetch_dir/cache" -prefetch \
    -out "$prefetch_dir/warm" >/dev/null 2>"$prefetch_log" || true
prefetch_fetched=$(grep -o '[0-9]* fetched' "$prefetch_log" | head -1 | cut -d' ' -f1)
"$csbin" run curves -scale smoke -seed 7 \
    -cache -cache-dir "$prefetch_dir/cache" \
    -out "$prefetch_dir/run" >/dev/null 2>"$prefetch_log" || true
prefetch_hit_rate=$(awk '
    /^cache: / { hits = $2; disk = $4; misses = $7 }
    END {
        total = hits + disk + misses
        if (total > 0) printf "%.4f", (hits + disk) / total; else print "null"
    }' "$prefetch_log")
rm -rf "$prefetch_dir"; rm -f "$prefetch_log"
echo "dist lane: ${local_us}us/shard local, ${json5_us} json, ${bin5_us} binary (5 workers); prefetch hit rate ${prefetch_hit_rate} (${prefetch_fetched:-0} warmed)"
dist_json="  \"dist\": {\n"
dist_json+="    \"local_us_per_shard\": $local_us,\n"
dist_json+="    \"remote_2workers_json_us_per_shard\": $json2_us,\n"
dist_json+="    \"remote_2workers_binary_us_per_shard\": $bin2_us,\n"
dist_json+="    \"remote_5workers_json_us_per_shard\": $json5_us,\n"
dist_json+="    \"remote_5workers_binary_us_per_shard\": $bin5_us,\n"
dist_json+="    \"prefetch_fetched\": ${prefetch_fetched:-null},\n"
dist_json+="    \"prefetch_hit_rate\": $prefetch_hit_rate\n"
dist_json+="  },\n"

# Samples-to-target lane: every sampler strategy drives the same
# scenarios to the same relative-error target through the adaptive
# convergence driver (`-relerr`); the sampling_spent metric in each
# run's result.json is the total Monte Carlo samples that took —
# pilots (cv's β fits, auto's candidate shoot-outs) included, so the
# ledger is honest. The variance-reduction strategies must land
# equal-accuracy results in measurably fewer samples; auto runs cold
# (no choice table), so its number carries the one-off pilot cost a
# warm repeat run skips.
target=0.005
max_samples=4194304
scale=smoke
echo "samples-to-target lane: relerr <= $target, scale $scale"

spent_for() { # scenario sampler -> sampling_spent
    local dir
    dir=$(mktemp -d)
    "$csbin" run "$1" -scale "$scale" -sampler "$2" -relerr "$target" \
        -max-samples "$max_samples" -quiet -out "$dir" >/dev/null 2>&1
    grep -ho '"sampling_spent": [0-9.e+]*' "$dir"/*/result.json | head -1 | awk '{printf "%d", $2}'
    rm -rf "$dir"
}

sampling_json="  \"sampling\": {\n"
sampling_json+="    \"target_relerr\": $target,\n"
sampling_json+="    \"max_samples\": $max_samples,\n"
sampling_json+="    \"scale\": \"$scale\",\n"
sampling_json+="    \"scenarios\": [\n"
scenarios=(curves inefficiency tables)
samplers=(antithetic stratified sobol cv auto)
for i in "${!scenarios[@]}"; do
    sc=${scenarios[$i]}
    plain=$(spent_for "$sc" plain)
    row="{\"scenario\": \"$sc\", \"plain\": $plain"
    line="  $sc: plain=$plain"
    for s in "${samplers[@]}"; do
        v=$(spent_for "$sc" "$s")
        pct=$(awk -v p="$plain" -v v="$v" 'BEGIN{printf "%.1f", 100*(1-v/p)}')
        row+=", \"$s\": $v, \"${s}_savings_pct\": $pct"
        line+=" $s=$v (-$pct%)"
    done
    row+="}"
    echo "$line"
    comma=$([ "$i" -lt $((${#scenarios[@]} - 1)) ] && echo "," || echo "")
    sampling_json+="      $row$comma\n"
done
sampling_json+="    ]\n  }\n"

# Provenance header: which tree produced these numbers. `cs bench diff`
# labels its columns with the commit, and a dirty flag warns that the
# snapshot may not be reproducible from any commit at all.
commit=$(git rev-parse HEAD 2>/dev/null || true)
dirty=false
[ -n "$(git status --porcelain 2>/dev/null)" ] && dirty=true

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
    printf '  "commit": "%s",\n' "$commit"
    printf '  "dirty": %s,\n' "$dirty"
    printf '  "bench": "go test -short -run ^$ -bench . -benchtime 1x -benchmem .",\n'
    cat "$bench_json"
    printf '%b' "$sim_json"
    printf '%b' "$dist_json"
    printf '%b' "$sampling_json"
    printf '}\n'
} > "$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks + sampler lane)"
