#!/usr/bin/env bash
# Benchmark baseline snapshot: run the -short bench lane once and emit
# BENCH_<date>.json — one record per benchmark with ns/op and every
# custom metric — so the repo's performance trajectory is tracked
# run-over-run. CI executes this and uploads the JSON as an artifact;
# locally:
#
#   scripts/bench_baseline.sh            # writes BENCH_YYYYMMDD.json
#   scripts/bench_baseline.sh out.json   # explicit output path
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date -u +%Y%m%d).json}"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -short -run '^$' -bench . -benchtime 1x -benchmem . | tee "$raw"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v goversion="$(go version | awk '{print $3}')" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)           # strip the GOMAXPROCS suffix
    iters = $2
    ns = ""
    metrics = ""
    for (i = 3; i < NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (unit == "ns/op") { ns = val; continue }
        gsub(/"/, "", unit)
        metrics = metrics sprintf("%s\"%s\": %s", (metrics == "" ? "" : ", "), unit, val)
    }
    recs[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"metrics\": {%s}}",
                        name, iters, (ns == "" ? "null" : ns), metrics)
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"bench\": \"go test -short -run ^$ -bench . -benchtime 1x -benchmem .\",\n"
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
