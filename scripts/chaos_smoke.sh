#!/usr/bin/env bash
# Chaos smoke test: the deterministic fault-injection layer driven end
# to end. One schedule string is handed to every worker; each installs
# only the rules addressed to it:
#
#   worker1:crash@batch2   kill -9 semantics mid-run (os.Exit(3))
#   worker2:slow=750ms     a straggler for hedged dispatch to beat
#   worker3:refuse=4       transient refusals: abandoned after 3, the
#                          4th eats one readmission probe, then heals
#   cache:flip=1           one disk-cache bit flip (coordinator side,
#                          exercised in the separate cache leg)
#
# The contract under all of that: byte-identical artifacts. A crashed
# worker, a straggler, a healed-and-readmitted worker, and a corrupt
# cache entry must change *nothing* about the results — only the
# timeline. The script also asserts the failures actually happened
# (worker1 exited 3, worker3 served after readmission, the flipped
# entry was quarantined) so a regression cannot pass by never injecting
# anything. CI runs this; it is also handy locally:
#
#   scripts/chaos_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true # reap: no orphaned cs serve outliving the script
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/cs" ./cmd/cs

require_identical() { # <dir> <label>
  local got_dir
  got_dir=$(echo "$1"/*)
  for f in output.txt result.json; do
    if ! cmp -s "$local_dir/$f" "$got_dir/$f"; then
      echo "$2 run differs from local in $f:" >&2
      diff "$local_dir/$f" "$got_dir/$f" >&2 || true
      exit 1
    fi
  done
}

# --- cache-corruption leg ---------------------------------------------
# Warm the persistent cache on a cheap scenario, then re-run with one
# injected disk-load bit flip: the damaged entry must read as a
# quarantined miss and be recomputed, leaving artifacts byte-identical.
"$work/cs" run curves -scale smoke -seed 7 -quiet -out "$work/cachelocal"
local_dir=$(echo "$work"/cachelocal/*)

"$work/cs" run curves -scale smoke -seed 7 -quiet \
  -cache -cache-dir "$work/cache" -out "$work/cachewarm"
require_identical "$work/cachewarm" "cache-warm"

corrupt_log="$work/corrupt.log"
"$work/cs" run curves -scale smoke -seed 7 -quiet \
  -cache -cache-dir "$work/cache" -fault 'cache:flip=1,seed=99' \
  -out "$work/cachechaos" 2>"$corrupt_log"
require_identical "$work/cachechaos" "cache-corruption"
if ! grep -q 'corrupt disk entries quarantined and recomputed' "$corrupt_log"; then
  echo "corrupted cache entry was not detected; stderr was:" >&2
  cat "$corrupt_log" >&2
  exit 1
fi
if [ -z "$(ls "$work/cache/quarantine" 2>/dev/null)" ]; then
  echo "corrupt entry was not moved to the quarantine sidecar" >&2
  exit 1
fi
# The run's own metrics.json must record the injection: a chaos run
# whose fault counters read zero proves nothing. The registry key is
# cs_fault_injected_total{kind="flip"}; inside the JSON document its
# quotes are backslash-escaped, so strip the escapes before matching.
cachechaos_dir=$(echo "$work"/cachechaos/*)
flips=$(tr -d '\\' <"$cachechaos_dir/metrics.json" |
  grep -o 'cs_fault_injected_total{kind="flip"}": *[0-9.]*' |
  head -1 | grep -o '[0-9.]*$' | cut -d. -f1 || true)
if [ "${flips:-0}" -eq 0 ]; then
  echo "metrics.json records no cs_fault_injected_total{kind=flip} — the flip never fired:" >&2
  cat "$cachechaos_dir/metrics.json" >&2
  exit 1
fi

# --- fleet-chaos leg --------------------------------------------------
# Four workers under one schedule: a crasher, a straggler, a transient
# refuser, and one honest machine. Hedging beats the straggler,
# readmission heals the refuser mid-soak, and every artifact must still
# be byte-identical to local. The scenario config matters: each
# estimation must span many dispatch batches (samples=300000 ≈ 10
# batches of 8 shards) so the whole fleet gets work — tiny estimations
# fit in one batch and a single warm stream would serve them all,
# leaving the fault schedule untouched.
scenario_args=(multi -scale bench -set maxn=3 -set samples=300000 -seed 7)
"$work/cs" run "${scenario_args[@]}" -quiet -out "$work/local"
local_dir=$(echo "$work"/local/*)

schedule='worker1:crash@batch2,worker2:slow=750ms,worker3:refuse=4,seed=7'
declare -A worker_pid
for i in 1 2 3 4; do
  "$work/cs" serve -listen "127.0.0.1:1806$i" \
    -fault "$schedule" -fault-id "worker$i" 2>"$work/worker$i.log" &
  worker_pid[$i]=$!
done

# Health-wait on everyone except worker3: its refusal budget is part of
# the choreography and a startup poll would eat it. The workers are one
# binary; three up means the fourth's listener is up too.
for i in 1 2 4; do
  ok=""
  for _ in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:1806$i/healthz" >/dev/null 2>&1; then
      ok=1
      break
    fi
    sleep 0.2
  done
  if [ -z "$ok" ]; then
    echo "worker$i never became healthy" >&2
    cat "$work/worker$i.log" >&2
    exit 1
  fi
done

fleet=127.0.0.1:18061,127.0.0.1:18062,127.0.0.1:18063,127.0.0.1:18064
chaos_log="$work/chaos.log"
"$work/cs" run "${scenario_args[@]}" -quiet \
  -workers "$fleet" -hedge 0.9 -readmit-base 150ms \
  -out "$work/chaos" 2>"$chaos_log"
require_identical "$work/chaos" "fleet-chaos"

# The crasher must have actually died, with the injected exit code. Its
# os.Exit races the tail of the batch that triggered it, so allow a
# short grace before declaring it immortal.
for _ in $(seq 1 50); do
  kill -0 "${worker_pid[1]}" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "${worker_pid[1]}" 2>/dev/null; then
  echo "worker1 survived its crash@batch2 injection; its log:" >&2
  cat "$work/worker1.log" >&2
  exit 1
fi
rc=0
wait "${worker_pid[1]}" || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "worker1 exited $rc, want the injected crash exit 3" >&2
  cat "$work/worker1.log" >&2
  exit 1
fi
if ! grep -q 'fault: injected crash at batch 2' "$work/worker1.log"; then
  echo "worker1 stderr lacks the crash notice:" >&2
  cat "$work/worker1.log" >&2
  exit 1
fi

# The refuser must have been readmitted and then actually served work.
w3_shards=$(curl -sf "http://127.0.0.1:18063/stats" |
  grep -o '"shards":[0-9]*' | head -1 | cut -d: -f2)
if [ "${w3_shards:-0}" -eq 0 ]; then
  echo "worker3 served no shards after readmission; coordinator log:" >&2
  cat "$chaos_log" >&2
  exit 1
fi

# The coordinator's run metrics must record the healing machinery
# firing: workers declared dead, the refuser readmitted.
chaos_dir=$(echo "$work"/chaos/*)
metric() { # <registry family> -> integer value (0 when absent)
  grep -o "\"$1[^\"]*\": *[0-9.]*" "$chaos_dir/metrics.json" |
    head -1 | grep -o '[0-9.]*$' | cut -d. -f1 || true
}
readmitted=$(metric cs_dist_workers_readmitted_total)
abandoned=$(metric cs_dist_workers_abandoned_total)
hedges=$(metric cs_dist_hedges_total)
if [ "${readmitted:-0}" -eq 0 ]; then
  echo "cs_dist_workers_readmitted_total is zero — worker3 never healed; metrics:" >&2
  cat "$chaos_dir/metrics.json" >&2
  exit 1
fi
if [ "${abandoned:-0}" -eq 0 ]; then
  echo "cs_dist_workers_abandoned_total is zero — nothing was ever declared dead" >&2
  exit 1
fi

echo "chaos smoke OK: byte-identical through a crashed worker, a 750ms" \
  "straggler (${hedges:-0} hedges), a refuser readmitted mid-soak (now at" \
  "$w3_shards shards), and a quarantined cache flip"
