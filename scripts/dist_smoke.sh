#!/usr/bin/env bash
# Distributed smoke test: start two `cs serve` workers on localhost and
# run one scenario five ways — locally, over the JSON wire, over the
# binary frame wire, via -cache -prefetch on the binary wire, and with
# full observability (-trace + -metrics-listen) — then require every
# run to be byte-identical to the local one. The /stats endpoints must
# show the traffic actually took the wire under test (shards via JSON
# POSTs, stream batches via binary frames), the /metrics scrapes must
# be live Prometheus text, and a SIGTERM'd worker must drain in-flight
# batches and exit 0. CI runs this; it is also handy locally:
#
#   scripts/dist_smoke.sh
#
# Set DIST_SMOKE_METRICS=path to keep the observability run's
# metrics.json after the script's scratch dir is removed (CI uploads
# it as a build artifact).
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true # reap: no orphaned cs serve outliving the script
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/cs" ./cmd/cs

"$work/cs" serve -listen 127.0.0.1:18041 2>"$work/worker1.log" &
worker1=$!
"$work/cs" serve -listen 127.0.0.1:18042 2>"$work/worker2.log" &

for port in 18041 18042; do
  ok=""
  for _ in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
      ok=1
      break
    fi
    sleep 0.2
  done
  if [ -z "$ok" ]; then
    echo "worker on :$port never became healthy" >&2
    exit 1
  fi
done

fleet=127.0.0.1:18041,127.0.0.1:18042
scenario=curves

stat_sum() { # <json field> -> field summed across both workers
  local total=0 v
  for port in 18041 18042; do
    v=$(curl -sf "http://127.0.0.1:$port/stats" |
      grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2)
    total=$((total + ${v:-0}))
  done
  echo "$total"
}

require_identical() { # <dir> <label>
  local got_dir
  got_dir=$(echo "$1"/*)
  for f in output.txt result.json; do
    if ! cmp -s "$local_dir/$f" "$got_dir/$f"; then
      echo "$2 run differs from local in $f:" >&2
      diff "$local_dir/$f" "$got_dir/$f" >&2 || true
      exit 1
    fi
  done
}

"$work/cs" run "$scenario" -scale smoke -seed 7 -quiet -out "$work/local"
local_dir=$(echo "$work"/local/*)

# JSON wire: the legacy one-POST-per-batch protocol, still the fallback
# for old workers. Must be bit-identical and must move shards.
"$work/cs" run "$scenario" -scale smoke -seed 7 -quiet \
  -workers "$fleet" -wire json -out "$work/json"
require_identical "$work/json" "json-wire"
if [ "$(stat_sum shards)" -eq 0 ]; then
  echo "JSON-wire run moved no shards — the run was not distributed" >&2
  exit 1
fi

# Binary wire: persistent streams, length-prefixed frames. Must be
# bit-identical and must move stream batches (the counter only the
# frame protocol increments).
"$work/cs" run "$scenario" -scale smoke -seed 7 -quiet \
  -workers "$fleet" -wire binary -out "$work/binary"
require_identical "$work/binary" "binary-wire"
if [ "$(stat_sum stream_batches)" -eq 0 ]; then
  echo "binary-wire run moved no stream batches — frames were not used" >&2
  exit 1
fi

# Plan-driven prefetch: cold cache, -prefetch warms it through the
# fleet, then the real run is served from the cache — still
# byte-identical output.
prefetch_log="$work/prefetch.log"
"$work/cs" run "$scenario" -scale smoke -seed 7 -quiet \
  -workers "$fleet" -wire binary \
  -cache -cache-dir "$work/cache" -prefetch \
  -out "$work/prefetch" 2>"$prefetch_log"
require_identical "$work/prefetch" "prefetch"
if ! grep -q '^prefetch: [0-9]* predicted misses' "$prefetch_log"; then
  echo "prefetch pass left no summary line; stderr was:" >&2
  cat "$prefetch_log" >&2
  exit 1
fi
fetched=$(grep -o '[0-9]* fetched' "$prefetch_log" | head -1 | cut -d' ' -f1)
if [ "${fetched:-0}" -eq 0 ]; then
  echo "prefetch pass fetched nothing on a cold cache:" >&2
  cat "$prefetch_log" >&2
  exit 1
fi
grep '^prefetch:' "$prefetch_log"

# Observability run: a Perfetto trace plus a live coordinator /metrics
# endpoint, still byte-identical to the local run — instrumentation
# must be observationally inert.
"$work/cs" run "$scenario" -scale smoke -seed 7 -quiet \
  -workers "$fleet" -wire binary \
  -trace "$work/trace.json" -metrics-listen 127.0.0.1:18049 \
  -out "$work/traced"
require_identical "$work/traced" "traced"
if ! grep -q '"traceEvents"' "$work/trace.json"; then
  echo "-trace wrote no trace_event document" >&2
  exit 1
fi
traced_dir=$(echo "$work"/traced/*)
for f in metrics.json timings.csv; do
  if [ ! -s "$traced_dir/$f" ]; then
    echo "observability run left no $f" >&2
    exit 1
  fi
done
if ! grep -q '"evaluated_samples"' "$traced_dir/metrics.json"; then
  echo "metrics.json lacks the run summary:" >&2
  cat "$traced_dir/metrics.json" >&2
  exit 1
fi
if [ -n "${DIST_SMOKE_METRICS:-}" ]; then
  cp "$traced_dir/metrics.json" "$DIST_SMOKE_METRICS"
fi

# Worker /metrics must be Prometheus text with live counters: after
# the runs above, evaluated shards must show up in the scrape.
metrics_shards=0
for port in 18041 18042; do
  scrape=$(curl -sf "http://127.0.0.1:$port/metrics")
  for family in cs_worker_requests_total cs_worker_shards_total \
    cs_worker_inflight_batches cs_worker_batch_eval_seconds; do
    if ! echo "$scrape" | grep -q "^# TYPE $family "; then
      echo "worker :$port /metrics lacks $family; scrape was:" >&2
      echo "$scrape" >&2
      exit 1
    fi
  done
  v=$(echo "$scrape" | grep '^cs_worker_shards_total ' | cut -d' ' -f2 | cut -d. -f1)
  metrics_shards=$((metrics_shards + ${v:-0}))
done
if [ "$metrics_shards" -eq 0 ]; then
  echo "worker /metrics shard counters are zero after distributed runs" >&2
  exit 1
fi

# Graceful drain: /stats must expose the drain surface, and a SIGTERM'd
# worker must finish in-flight batches and exit 0 with the drain notice.
stats=$(curl -sf "http://127.0.0.1:18041/stats")
for field in uptime_seconds inflight_batches draining; do
  if ! echo "$stats" | grep -q "\"$field\""; then
    echo "/stats lacks \"$field\": $stats" >&2
    exit 1
  fi
done
if ! echo "$stats" | grep -q '"draining":false'; then
  echo "idle worker reports draining: $stats" >&2
  exit 1
fi
kill -TERM "$worker1"
if ! wait "$worker1"; then
  echo "SIGTERM'd worker exited non-zero" >&2
  cat "$work/worker1.log" >&2
  exit 1
fi
if ! grep -q 'drained in-flight shard batches and stopped' "$work/worker1.log"; then
  echo "worker stderr lacks the drain notice:" >&2
  cat "$work/worker1.log" >&2
  exit 1
fi

echo "distributed smoke OK: '$scenario' is bit-identical across 2 workers on both wires (+prefetch, $fetched estimations warmed; +trace/metrics inert, $metrics_shards shards scraped, drain clean)"
