#!/usr/bin/env bash
# Distributed smoke test: start two `cs serve` workers on localhost,
# run one scenario with and without -workers, and require the two runs
# to be byte-identical. CI runs this; it is also handy locally:
#
#   scripts/dist_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/cs" ./cmd/cs

"$work/cs" serve -listen 127.0.0.1:18041 &
"$work/cs" serve -listen 127.0.0.1:18042 &

for port in 18041 18042; do
  ok=""
  for _ in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
      ok=1
      break
    fi
    sleep 0.2
  done
  if [ -z "$ok" ]; then
    echo "worker on :$port never became healthy" >&2
    exit 1
  fi
done

scenario=curves
"$work/cs" run "$scenario" -scale smoke -seed 7 -quiet -out "$work/local"
"$work/cs" run "$scenario" -scale smoke -seed 7 -quiet \
  -workers 127.0.0.1:18041,127.0.0.1:18042 -out "$work/dist"

local_dir=$(echo "$work"/local/*)
dist_dir=$(echo "$work"/dist/*)
for f in output.txt result.json; do
  if ! cmp -s "$local_dir/$f" "$dist_dir/$f"; then
    echo "distributed run differs from local in $f:" >&2
    diff "$local_dir/$f" "$dist_dir/$f" >&2 || true
    exit 1
  fi
done

s1=$(curl -sf http://127.0.0.1:18041/stats)
s2=$(curl -sf http://127.0.0.1:18042/stats)
echo "worker 1 stats: $s1"
echo "worker 2 stats: $s2"
if [[ "$s1" == *'"shards":0,'* && "$s2" == *'"shards":0,'* ]]; then
  echo "neither worker served any shards — the run was not distributed" >&2
  exit 1
fi

echo "distributed smoke OK: '$scenario' is bit-identical across 2 workers"
