#!/usr/bin/env bash
# Distributed smoke test: start two `cs serve` workers on localhost and
# run one scenario four ways — locally, over the JSON wire, over the
# binary frame wire, and via -cache -prefetch on the binary wire — then
# require every run to be byte-identical to the local one. The /stats
# endpoints must show the traffic actually took the wire under test
# (shards via JSON POSTs, stream batches via binary frames). CI runs
# this; it is also handy locally:
#
#   scripts/dist_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/cs" ./cmd/cs

"$work/cs" serve -listen 127.0.0.1:18041 &
"$work/cs" serve -listen 127.0.0.1:18042 &

for port in 18041 18042; do
  ok=""
  for _ in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
      ok=1
      break
    fi
    sleep 0.2
  done
  if [ -z "$ok" ]; then
    echo "worker on :$port never became healthy" >&2
    exit 1
  fi
done

fleet=127.0.0.1:18041,127.0.0.1:18042
scenario=curves

stat_sum() { # <json field> -> field summed across both workers
  local total=0 v
  for port in 18041 18042; do
    v=$(curl -sf "http://127.0.0.1:$port/stats" |
      grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2)
    total=$((total + ${v:-0}))
  done
  echo "$total"
}

require_identical() { # <dir> <label>
  local got_dir
  got_dir=$(echo "$1"/*)
  for f in output.txt result.json; do
    if ! cmp -s "$local_dir/$f" "$got_dir/$f"; then
      echo "$2 run differs from local in $f:" >&2
      diff "$local_dir/$f" "$got_dir/$f" >&2 || true
      exit 1
    fi
  done
}

"$work/cs" run "$scenario" -scale smoke -seed 7 -quiet -out "$work/local"
local_dir=$(echo "$work"/local/*)

# JSON wire: the legacy one-POST-per-batch protocol, still the fallback
# for old workers. Must be bit-identical and must move shards.
"$work/cs" run "$scenario" -scale smoke -seed 7 -quiet \
  -workers "$fleet" -wire json -out "$work/json"
require_identical "$work/json" "json-wire"
if [ "$(stat_sum shards)" -eq 0 ]; then
  echo "JSON-wire run moved no shards — the run was not distributed" >&2
  exit 1
fi

# Binary wire: persistent streams, length-prefixed frames. Must be
# bit-identical and must move stream batches (the counter only the
# frame protocol increments).
"$work/cs" run "$scenario" -scale smoke -seed 7 -quiet \
  -workers "$fleet" -wire binary -out "$work/binary"
require_identical "$work/binary" "binary-wire"
if [ "$(stat_sum stream_batches)" -eq 0 ]; then
  echo "binary-wire run moved no stream batches — frames were not used" >&2
  exit 1
fi

# Plan-driven prefetch: cold cache, -prefetch warms it through the
# fleet, then the real run is served from the cache — still
# byte-identical output.
prefetch_log="$work/prefetch.log"
"$work/cs" run "$scenario" -scale smoke -seed 7 -quiet \
  -workers "$fleet" -wire binary \
  -cache -cache-dir "$work/cache" -prefetch \
  -out "$work/prefetch" 2>"$prefetch_log"
require_identical "$work/prefetch" "prefetch"
if ! grep -q '^prefetch: [0-9]* predicted misses' "$prefetch_log"; then
  echo "prefetch pass left no summary line; stderr was:" >&2
  cat "$prefetch_log" >&2
  exit 1
fi
fetched=$(grep -o '[0-9]* fetched' "$prefetch_log" | head -1 | cut -d' ' -f1)
if [ "${fetched:-0}" -eq 0 ]; then
  echo "prefetch pass fetched nothing on a cold cache:" >&2
  cat "$prefetch_log" >&2
  exit 1
fi
grep '^prefetch:' "$prefetch_log"

echo "distributed smoke OK: '$scenario' is bit-identical across 2 workers on both wires (+prefetch, $fetched estimations warmed)"
