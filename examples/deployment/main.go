// Deployment: choose a clear channel assessment threshold for a WLAN
// product line.
//
// A radio vendor must burn one CCA threshold into firmware that will
// be deployed in apartments (short range), offices (mid range) and
// warehouses (long range), across propagation environments from α = 2
// to α = 4. This example walks the §3.3.3/§3.3.4 analysis: compute the
// per-deployment optimal threshold, take the paper's
// split-the-difference compromise, then verify with a sensitivity
// sweep that the compromise costs almost nothing anywhere — the
// paper's threshold-robustness claim, applied.
//
// Run with: go run ./examples/deployment
package main

import (
	"fmt"
	"os"

	"carriersense/internal/core"
	"carriersense/internal/experiments"
	"carriersense/internal/numeric"
	"carriersense/internal/plot"
)

func main() {
	const (
		samples = 60_000
		seed    = 7
	)

	// Step 1: optimal thresholds per deployment scenario.
	fmt.Println("Step 1: per-scenario optimal thresholds (alpha=3, sigma=8dB)")
	model := core.New(core.DefaultParams())
	scenarios := []struct {
		name string
		rmax float64
	}{
		{"apartment", 15},
		{"office", 40},
		{"warehouse", 90},
		{"campus", 150},
	}
	tbl := plot.Table{Headers: []string{"deployment", "Rmax", "optimal Dthresh", "regime", "edge SNR"}}
	var lo, hi float64
	for i, sc := range scenarios {
		dOpt := model.OptimalThreshold(seed+uint64(i), samples, sc.rmax)
		if i == 0 {
			lo = dOpt
		}
		hi = dOpt
		tbl.AddRow(sc.name,
			fmt.Sprintf("%.0f", sc.rmax),
			fmt.Sprintf("%.0f", dOpt),
			core.Classify(sc.rmax, dOpt).String(),
			fmt.Sprintf("%.0f dB", model.EdgeSNRdB(sc.rmax)))
	}
	tbl.Render(os.Stdout)

	// Step 2: the compromise.
	compromise := (lo + hi) / 2
	fmt.Printf("\nStep 2: split-the-difference factory threshold: D ~= %.0f\n", compromise)

	// Step 3: how much does the compromise cost at each deployment?
	fmt.Println("\nStep 3: efficiency of the compromise threshold per deployment")
	tbl2 := plot.Table{Headers: []string{"deployment", "compromise eff", "tuned eff", "cost"}}
	for i, sc := range scenarios {
		p := experiments.DefaultCurves(sc.rmax)
		p.SigmaDB = 8
		p.DGrid = numeric.LinSpace(5, 4*sc.rmax, 12)
		sens := experiments.ThresholdSensitivity(p, []float64{compromise}, experiments.ScaleBench)
		dOpt := model.OptimalThreshold(seed+uint64(i), samples, sc.rmax)
		tuned := experiments.ThresholdSensitivity(p, []float64{dOpt}, experiments.ScaleBench)
		tbl2.AddRow(sc.name,
			plot.Percent(sens[0].Efficiency),
			plot.Percent(tuned[0].Efficiency),
			fmt.Sprintf("%.1f pts", 100*(tuned[0].Efficiency-sens[0].Efficiency)))
	}
	tbl2.Render(os.Stdout)
	fmt.Println("\nConclusion (the paper's): one threshold serves every deployment;")
	fmt.Println("tuning buys at most a point or two of efficiency.")
}
