// Quickstart: evaluate carrier sense for a two-pair wireless scenario
// using the paper's analytical model.
//
// The scenario: two 802.11-like sender-receiver pairs in a typical
// indoor environment (path loss exponent 3, 8 dB shadowing). We ask
// the model the paper's central questions: how much throughput does
// each MAC policy deliver, how close is carrier sense to optimal, and
// what threshold should the hardware ship with?
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"carriersense/internal/core"
)

func main() {
	// The paper's default environment: α = 3, σ = 8 dB, noise floor
	// -65 dB below unit-distance power (so r = 20 ≈ 26 dB SNR).
	model := core.New(core.DefaultParams())

	// A mid-size WLAN: receivers within R_max = 40 of their senders,
	// competing senders D = 55 apart, factory threshold D_thresh = 55.
	const (
		rmax    = 40.0
		d       = 55.0
		dThresh = 55.0
		samples = 200_000
		seed    = 1
	)

	avg := model.EstimateAverages(seed, samples, rmax, d, dThresh)
	fmt.Println("Two competing pairs, Rmax=40, D=55, Dthresh=55:")
	fmt.Printf("  multiplexing: %5.2f capacity units\n", avg.Mux.Mean)
	fmt.Printf("  concurrency:  %5.2f\n", avg.Conc.Mean)
	fmt.Printf("  carrier sense:%5.2f\n", avg.CS.Mean)
	fmt.Printf("  optimal:      %5.2f\n", avg.Max.Mean)
	fmt.Printf("  CS efficiency: %.0f%% of optimal\n", 100*avg.Efficiency())
	fmt.Printf("  CS defers %.0f%% of the time at this separation\n\n",
		100*avg.DeferredFraction.Mean)

	// Where does this network sit on the short/long-range spectrum?
	dOpt := model.OptimalThreshold(seed, samples/4, rmax)
	regime := core.Classify(rmax, dOpt)
	fmt.Printf("Optimal threshold for Rmax=%.0f: D ~= %.0f (%s regime, edge SNR %.0f dB)\n",
		rmax, dOpt, regime, model.EdgeSNRdB(rmax))

	// The paper's factory recommendation: split the difference across
	// the hardware's whole operating span (802.11g-like: r = 20..120).
	factory := model.RecommendFactoryThreshold(seed, samples/4, 20, 120)
	fmt.Printf("Factory threshold across Rmax 20..120: D ~= %.0f (paper: ~55)\n\n", factory)

	// How badly can shadowing mislead the sender about its receiver's
	// SINR? (§3.4's σ√3 bound.)
	fmt.Printf("SNR-estimate uncertainty under shadowing: %.1f dB (~%.1fx in distance)\n",
		model.SNREstimateUncertaintyDB(),
		model.LumpedDistanceFactor(model.SNREstimateUncertaintyDB()))
}
