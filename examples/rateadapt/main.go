// Rate adaptation: compare bitrate adaptation algorithms on a single
// link in the packet simulator — fixed rates, ARF, SampleRate
// [Bicket05], and the oracle (best fixed rate in hindsight, the
// paper's §4 methodology).
//
// The paper's position (§1, §5, §7): bitrate adaptation is "the single
// most important factor in performance under the MAC's control", and
// algorithms like SampleRate reach the optimal rate as long as
// conditions don't change too rapidly. This example quantifies both
// halves: the steady-state gap to oracle at several SNRs, and the
// convergence lag after an abrupt SNR drop.
//
// Run with: go run ./examples/rateadapt
package main

import (
	"fmt"
	"os"

	"carriersense/internal/capacity"
	"carriersense/internal/mac"
	"carriersense/internal/phy"
	"carriersense/internal/plot"
	"carriersense/internal/rate"
	"carriersense/internal/rng"
	"carriersense/internal/sim"
)

// snrChannel is a two-node channel pinned to a target SNR; SetSNR
// changes it mid-run.
type snrChannel struct {
	gainDB float64
}

func (c *snrChannel) GainDB(from, to phy.NodeID) float64 { return c.gainDB }

// setSNR pins the link SNR given 15 dBm TX power and a -95 dBm noise
// floor: gain = snr - 110.
func (c *snrChannel) setSNR(snrDB float64) { c.gainDB = snrDB - 110 }

// run measures delivered goodput (Mb/s) over the given duration;
// if dropTo >= 0, the SNR drops to it halfway through.
func run(snrDB, dropTo float64, rates mac.RateSelector, seconds float64, seed uint64) float64 {
	src := rng.New(seed)
	s := sim.New()
	ch := &snrChannel{}
	ch.setSNR(snrDB)
	medium := phy.NewMedium(s, ch, phy.DefaultConfig(), src.Split())
	tx := medium.AddRadio(0, 15)
	rx := medium.AddRadio(1, 15)
	macCfg := mac.DefaultConfig()
	macCfg.UseACK = true
	st := mac.NewStation(s, tx, macCfg, src.Split(), rates)
	mac.NewStation(s, rx, macCfg, src.Split(), nil)
	delivered := 0.0
	st.OnDeliver = func(f phy.Frame) { delivered += float64(f.Bytes) * 8 / 1e6 }
	st.StartSaturated(1, 1400)
	if dropTo >= 0 {
		s.At(sim.FromSeconds(seconds/2), func() { ch.setSNR(dropTo) })
	}
	s.Run(sim.FromSeconds(seconds))
	return delivered / seconds
}

func main() {
	const seconds = 4.0
	table := capacity.Table80211a

	fmt.Println("Steady-state goodput (Mb/s) by adaptation algorithm:")
	tbl := plot.Table{Headers: []string{"SNR", "fixed 6M", "fixed 54M", "ARF", "SampleRate", "oracle"}}
	for _, snr := range []float64{8, 14, 20, 30} {
		oracle := 0.0
		for _, r := range table {
			if g := run(snr, -1, mac.FixedRate{Rate: r}, seconds, 3); g > oracle {
				oracle = g
			}
		}
		tbl.AddRow(
			fmt.Sprintf("%.0f dB", snr),
			fmt.Sprintf("%.1f", run(snr, -1, mac.FixedRate{Rate: table[0]}, seconds, 3)),
			fmt.Sprintf("%.1f", run(snr, -1, mac.FixedRate{Rate: table[7]}, seconds, 3)),
			fmt.Sprintf("%.1f", run(snr, -1, rate.NewARF(table), seconds, 3)),
			fmt.Sprintf("%.1f", run(snr, -1, rate.NewSampleRate(table), seconds, 3)),
			fmt.Sprintf("%.1f", oracle),
		)
	}
	tbl.Render(os.Stdout)

	fmt.Println("\nAbrupt SNR drop 30 dB -> 10 dB at t=2s (adaptation lag, §7):")
	tbl2 := plot.Table{Headers: []string{"algorithm", "goodput (Mb/s)"}}
	tbl2.AddRow("ARF", fmt.Sprintf("%.1f", run(30, 10, rate.NewARF(table), seconds, 5)))
	tbl2.AddRow("SampleRate", fmt.Sprintf("%.1f", run(30, 10, rate.NewSampleRate(table), seconds, 5)))
	tbl2.AddRow("oracle per phase", fmt.Sprintf("%.1f",
		(bestFixed(30, seconds/2)+bestFixed(10, seconds/2))/2))
	tbl2.Render(os.Stdout)
	fmt.Println("\nSampleRate reaches the oracle rate in steady state but, as §7")
	fmt.Println("warns, 'may take a while getting there' after a sudden change.")
}

// bestFixed returns the best fixed-rate goodput at the given SNR.
func bestFixed(snrDB, seconds float64) float64 {
	best := 0.0
	for _, r := range capacity.Table80211a {
		if g := run(snrDB, -1, mac.FixedRate{Rate: r}, seconds, 9); g > best {
			best = g
		}
	}
	return best
}
