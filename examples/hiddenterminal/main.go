// Hidden terminal: build the textbook hidden-terminal topology in the
// packet simulator and measure what actually happens — with fixed
// bitrate, with adaptive bitrate, and with RTS/CTS protection (always
// on, and the paper's §5 proposal of loss-triggered enablement).
//
// Topology: two senders A and B that cannot hear each other, both
// within interference range of receiver R1 (A's receiver). B's own
// receiver R2 is on B's far side:
//
//	A  ----->  R1  <~~~~~  B  ----->  R2
//
// The paper's argument: with adaptive bitrate, the hidden terminal is
// "a less-than-ideal bitrate is needed to succeed", not a black-and-
// white outage — except at long range, where the interferer can truly
// smother R1 and §5's triggered RTS/CTS is the right repair.
//
// Run with: go run ./examples/hiddenterminal
package main

import (
	"fmt"
	"os"

	"carriersense/internal/capacity"
	"carriersense/internal/mac"
	"carriersense/internal/phy"
	"carriersense/internal/plot"
	"carriersense/internal/rate"
	"carriersense/internal/rng"
	"carriersense/internal/sim"
)

// matrixChannel is a hand-built gain matrix for the 4-node topology.
type matrixChannel struct {
	gains map[[2]phy.NodeID]float64
}

func (m matrixChannel) GainDB(from, to phy.NodeID) float64 {
	if g, ok := m.gains[[2]phy.NodeID{from, to}]; ok {
		return g
	}
	if g, ok := m.gains[[2]phy.NodeID{to, from}]; ok {
		return g
	}
	return -200 // disconnected
}

const (
	nodeA  phy.NodeID = 0
	nodeR1 phy.NodeID = 1
	nodeB  phy.NodeID = 2
	nodeR2 phy.NodeID = 3
)

// buildChannel constructs the hidden-terminal gains: A-B mutually
// inaudible (-115 dB path), B interferes with R1 at the given level.
func buildChannel(interfAtR1dB float64) matrixChannel {
	return matrixChannel{gains: map[[2]phy.NodeID]float64{
		{nodeA, nodeR1}:  -72,          // A's serving link: healthy 23 dB SNR
		{nodeB, nodeR2}:  -72,          // B's serving link
		{nodeA, nodeB}:   -115,         // the senders cannot hear each other
		{nodeB, nodeR1}:  interfAtR1dB, // the hidden interference path
		{nodeA, nodeR2}:  -110,         // A barely reaches R2
		{nodeR1, nodeR2}: -110,
	}}
}

// run measures A→R1 and B→R2 goodput (pkt/s) for one configuration.
func run(interfAtR1dB float64, rates mac.RateSelector, ratesB mac.RateSelector, rtsMode mac.RTSMode, seconds float64) (float64, float64) {
	src := rng.New(11)
	s := sim.New()
	phyCfg := phy.DefaultConfig()
	medium := phy.NewMedium(s, buildChannel(interfAtR1dB), phyCfg, src.Split())
	var radios [4]*phy.Radio
	for i := 0; i < 4; i++ {
		radios[i] = medium.AddRadio(phy.NodeID(i), 15)
	}
	macCfg := mac.DefaultConfig()
	macCfg.UseACK = true
	macCfg.RTS = rtsMode
	stA := mac.NewStation(s, radios[nodeA], macCfg, src.Split(), rates)
	stB := mac.NewStation(s, radios[nodeB], macCfg, src.Split(), ratesB)
	// Receivers: passive stations that generate CTS/ACK responses.
	mac.NewStation(s, radios[nodeR1], macCfg, src.Split(), nil)
	mac.NewStation(s, radios[nodeR2], macCfg, src.Split(), nil)
	var got1, got2 float64
	stA.OnDeliver = func(phy.Frame) { got1++ }
	stB.OnDeliver = func(phy.Frame) { got2++ }
	stA.StartSaturated(nodeR1, 1400)
	stB.StartSaturated(nodeR2, 1400)
	s.Run(sim.FromSeconds(seconds))
	return got1 / seconds, got2 / seconds
}

func main() {
	const seconds = 5.0
	table := capacity.TablePaperDriver
	fixed6 := mac.FixedRate{Rate: table[0]}
	fixed24 := mac.FixedRate{Rate: table[4]}

	fmt.Println("Hidden terminal study: A->R1 with hidden interferer B (B->R2 as the competing pair)")
	fmt.Println("A's serving SNR is 23 dB; interference level at R1 varies.")
	fmt.Println()

	tbl := plot.Table{Headers: []string{
		"interference at R1", "fixed 24M", "fixed 6M", "adaptive", "adaptive+RTS always", "adaptive+RTS adaptive",
	}}
	for _, interf := range []float64{-110, -95, -86, -78} {
		row := []string{fmt.Sprintf("%.0f dBm", 15+interf)}
		for _, setup := range []struct {
			mk  func() mac.RateSelector
			rts mac.RTSMode
		}{
			{func() mac.RateSelector { return fixed24 }, mac.RTSOff},
			{func() mac.RateSelector { return fixed6 }, mac.RTSOff},
			{func() mac.RateSelector { return newSample() }, mac.RTSOff},
			{func() mac.RateSelector { return newSample() }, mac.RTSAlways},
			{func() mac.RateSelector { return newSample() }, mac.RTSAdaptive},
		} {
			a, _ := run(interf, setup.mk(), newSample(), setup.rts, seconds)
			row = append(row, fmt.Sprintf("%.0f pkt/s", a))
		}
		tbl.AddRow(row...)
	}
	tbl.Render(os.Stdout)

	fmt.Println(`
Reading the table like the paper does:
  - With a weak interferer the "hidden terminal" barely matters, and
    fixed 6 Mb/s wastes far more than the interference ever could.
  - As interference grows, adaptive bitrate degrades gracefully
    (a lower rate still gets through) where fixed 24 Mb/s collapses.
  - Only when R1 is truly smothered does RTS/CTS pay; always-on RTS
    taxes every healthy configuration, which is why §5 wants it
    loss-triggered.`)
}

// newSample returns a fresh SampleRate adapter over the paper's
// driver rate set.
func newSample() mac.RateSelector {
	return rate.NewSampleRate(capacity.TablePaperDriver)
}
