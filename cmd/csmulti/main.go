// Command csmulti runs the n > 2 sender extension of the model: the
// case §3.2.1 set aside ("small n > 2 does not appear to fundamentally
// alter the results") and the axis along which footnote 18 expects
// exposed-terminal gains to grow ([Vutukuru08]'s best result needed
// six concurrent senders).
//
// Usage:
//
//	csmulti [-maxn 8] [-samples 20000] [-area 80] [-rmax 40] [-dthresh 55]
package main

import (
	"flag"
	"fmt"
	"os"

	"carriersense/internal/capacity"
	"carriersense/internal/core"
	"carriersense/internal/plot"
)

func main() {
	maxN := flag.Int("maxn", 8, "largest number of competing pairs")
	samples := flag.Int("samples", 20_000, "Monte Carlo configurations per n")
	area := flag.Float64("area", 80, "sender scattering radius")
	rmax := flag.Float64("rmax", 40, "receiver placement radius")
	dthresh := flag.Float64("dthresh", 55, "carrier sense threshold distance")
	flag.Parse()

	runTable := func(title string, cap capacity.Model) {
		tbl := plot.Table{
			Title:   title,
			Headers: []string{"n", "TDMA", "conc", "CS", "best-k", "k*", "CS/best-k", "exposed headroom", "avg active"},
		}
		for n := 2; n <= *maxN; n++ {
			p := core.DefaultMultiParams(n)
			p.AreaRadius = *area
			p.Rmax = *rmax
			p.DThresh = *dthresh
			p.Env.Capacity = cap
			mm := core.NewMulti(p)
			a := mm.EstimateMulti(uint64(n), *samples)
			tbl.AddRow(
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%.3f", a.TDMA.Mean),
				fmt.Sprintf("%.3f", a.Conc.Mean),
				fmt.Sprintf("%.3f", a.CS.Mean),
				fmt.Sprintf("%.3f", a.BestK.Mean),
				fmt.Sprintf("%.1f", a.MeanBestLevel.Mean),
				plot.Percent(a.Efficiency()),
				fmt.Sprintf("+%.0f%%", 100*a.ExposedHeadroom()),
				fmt.Sprintf("%.1f", a.AvgActive.Mean),
			)
		}
		tbl.Render(os.Stdout)
		fmt.Println()
	}

	runTable(fmt.Sprintf("n-pair extension, ADAPTIVE bitrate (Shannon): area=%.0f, Rmax=%.0f, Dthresh=%.0f",
		*area, *rmax, *dthresh), nil)
	// Vutukuru's regime: a fixed low bitrate on a network capable of
	// much more — roughly the 6 Mb/s point (≈4 dB SINR requirement).
	runTable("n-pair extension, FIXED LOW bitrate (Vutukuru's regime, footnote 18)",
		capacity.FixedRate{Rate: 1.25, MinSNR: 2.5})

	fmt.Println(`Reading the tables: per-pair throughput under each policy; "best-k" is
the fairness-respecting optimal proxy (best uniform concurrency
level); "exposed headroom" is what a perfect concurrency scheduler
would add over carrier sense.

The pair of tables is the paper's §5/footnote 18 argument in one view:
under ADAPTIVE bitrate the exposed-terminal headroom stays small and
does not grow with concurrency — carrier sense already converts spare
SINR into rate. Under a FIXED LOW bitrate the headroom grows with n,
which is exactly the regime where [Vutukuru08] found its 47% gains
(six concurrent senders, fixed low rate).`)
}
