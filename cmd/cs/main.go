// Command cs is the unified CLI over the scenario engine. It replaces
// the former cscurves, csthreshold, cslandscape, cstables, csmulti,
// cstestbed, csfit, and csreport binaries with one scenario catalog.
//
// Usage:
//
//	cs list [-v]
//	cs run <scenario> [-seed S] [-scale smoke|bench|full] [-parallel N]
//	                  [-workers host:port,...] [-set k=v ...]
//	                  [-grid k=v1,v2,... ...] [-out dir] [-quiet]
//	cs all [-seed S] [-scale ...] [-parallel N] [-workers ...] [-out dir] [-quiet]
//	cs serve [-listen :8031] [-parallel N]
//	cs help <scenario>
//
// Determinism: for a fixed -seed and -scale, `cs run` output is
// bit-identical at any -parallel width — random streams are assigned
// per fixed-size Monte Carlo shard, never per worker — and at any
// -workers fleet size, because the distributed executor merges shard
// accumulator states in shard order.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"carriersense/internal/cache"
	"carriersense/internal/dist"
	"carriersense/internal/engine"
	_ "carriersense/internal/experiments" // registers the scenario catalog
	"carriersense/internal/fault"
	"carriersense/internal/montecarlo"
	"carriersense/internal/obs"
	"carriersense/internal/prov"
	"carriersense/internal/sampling"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "all":
		err = cmdAll(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "cache":
		err = cmdCache(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "exp":
		err = cmdExp(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "help", "-h", "--help":
		if len(os.Args) > 2 {
			err = cmdHelp(os.Args[2])
		} else {
			usage(os.Stdout)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `cs — carrier sense reproduction scenario engine

commands:
  cs list [-v]              list registered scenarios (-v: settable params)
  cs run <scenario> [...]   run one scenario
  cs all [...]              run every scenario
  cs serve [-listen :8031]  run a distributed shard worker
  cs cache stats|clear      inspect or empty the persistent result cache
  cs verify RUNDIR...       re-hash run dirs against their provenance
                            manifests; nonzero exit on tamper or drift
  cs exp run -grid F -out D execute a declarative experiments.json grid,
                            stamping every repeat's manifest (accepts the
                            shared run flags: -workers, -cache, ...)
  cs exp analyze DIR        verify + aggregate manifested runs into
                            analysis/{summary_runs.csv,
                            summary_grouped.csv, tables.tex, plots.txt}
  cs bench diff OLD NEW     lane-by-lane comparison of two BENCH_*.json
                            snapshots (-threshold F, -gate lane=maxfrac
                            repeatable, -all, -o report.md); nonzero
                            exit when a gated lane regresses
  cs help <scenario>        describe one scenario and its parameters

serve flags:
  -listen ADDR   listen address (default :8031)
  -parallel N    per-request worker pool width (default GOMAXPROCS)
  -fault SPEC    deterministic fault schedule for chaos testing:
                 comma-separated target:kind[@batchN][=value] rules
                 plus an optional seed=N, e.g.
                 'worker1:crash@batch3,worker2:slow=200ms,seed=7'
                 (kinds: crash, slow, corrupt, truncate, refuse, flip)
  -fault-id NAME which schedule target this worker answers to
  -trace F       write this worker's Chrome trace_event timeline (one
                 span per evaluated shard batch) to F when a SIGINT/
                 SIGTERM drain completes — the worker-side complement
                 of the coordinator's run -trace

run/all flags:
  -seed S        override the scenario's Seed parameter
  -scale LEVEL   sampling effort: smoke, bench (default), or full
  -parallel N    Monte Carlo worker pool width (default GOMAXPROCS);
                 results are bit-identical at any width
  -sampler NAME  Monte Carlo sampling strategy: plain (default),
                 antithetic (mirrored draw pairs), stratified
                 (per-shard strata), sobol (scrambled quasi-Monte
                 Carlo), halton (rotated quasi-Monte Carlo fallback),
                 cv (control variates against each kernel's exact
                 sigma=0 quadrature twin), or auto (pilot every
                 strategy per kernel, run the winner); part of the
                 estimation identity, so results stay bit-identical at
                 any -parallel width, -workers fleet size, and through
                 -cache
  -auto-table F  with -sampler auto: persist the per-kernel winners to
                 F (JSON, stamped with the cache key epoch) so repeat
                 runs skip the pilot rounds; defaults to
                 <cache-dir>/sampler-choices.json when -cache is set
  -relerr T      adaptive budgets: grow each estimation point's sample
                 count (whole shards, nothing re-evaluated) until its
                 relative standard error is <= T; artifacts record
                 sampler, samples spent, and achieved RelErr per point
  -max-samples N cap for -relerr growth (default: the scenario's own
                 per-point budget)
  -workers LIST  distribute Monte Carlo shards over cs serve workers
                 (comma-separated host:port list); results are
                 bit-identical to a local run at any fleet size
  -wire MODE     shard transport with -workers: auto (default: binary
                 streams, per-worker JSON fallback for old workers),
                 json (force the HTTP/JSON wire), or binary (require
                 the stream; workers that lack it are abandoned)
  -shard-timeout D
                 with -workers: re-dispatch a shard batch unanswered
                 for D (e.g. 30s) to another worker; 0 (default) lets
                 batches run as long as their kernels do
  -hedge Q       with -workers: hedged dispatch — once the queue is
                 empty, an idle worker duplicates any batch in flight
                 longer than 2x the fastest worker's Q-quantile batch
                 latency; first result wins (bit-identical either way);
                 0 (default) disables hedging
  -readmit-base D
                 with -workers: base delay for the background /healthz
                 probes that readmit a dead worker (exponential backoff
                 with jitter; a healed worker rejoins even mid-run);
                 0 = 500ms default, negative disables readmission
  -fault SPEC    arm the deterministic fault-injection layer in this
                 process for rules targeting coord or cache, e.g.
                 -fault 'cache:flip=1,seed=7' (testing only; worker
                 rules belong on cs serve -fault ... -fault-id NAME)
  -cache         serve repeated kernel estimations from the result
                 cache (bit-identical to evaluating); persists across
                 runs under the cache directory
  -prefetch      with -cache: dry-run the scenario first, then batch-
                 evaluate every predicted cache miss before the real
                 run, so the run itself is all hits (pairs best with
                 -workers: the fleet streams the whole miss ledger
                 back to back)
  -cache-dir DIR persistent cache location (default: the user cache
                 dir, e.g. ~/.cache/carriersense)
  -cache-max-bytes B
                 bound the persistent cache; least-recently-used
                 entries are evicted once the directory exceeds B bytes
  -cpuprofile F  write a CPU profile of the run to F (go tool pprof)
  -memprofile F  write a heap profile at the end of the run to F
  -trace F       write a Chrome trace_event JSON timeline of the run
                 to F — engine variants, kernel estimations, local
                 pool shards, and per-worker dispatch batches as spans
                 (open in https://ui.perfetto.dev or chrome://tracing);
                 purely observational: artifacts stay byte-identical
  -metrics-listen ADDR
                 serve the process metric registry as Prometheus text
                 at http://ADDR/metrics for the duration of the run
                 (workers always expose /metrics; this adds the
                 coordinator side)
  -out DIR       write artifacts (output.txt, result.json, *.csv) into a
                 timestamped run directory under DIR
  -quiet         suppress the live text report on stdout

run-only flags:
  -set k=v       override one parameter (repeatable; dotted keys reach
                 nested structs, e.g. -set layout.nodes=30)
  -grid k=v1,v2  sweep a parameter axis (repeatable; axes cross-multiply)

run/all -plan (requires -cache):
  -plan          dry-run that diffs the run's estimations — for run,
                 one scenario including its -grid cross product; for
                 all, the whole catalog — against the cache and
                 reports which will be free, without evaluating
                 anything

"cs all" runs every scenario except report (which is itself the whole
catalog in one document).`)
}

// multiFlag collects repeatable -set / -grid values.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// runConfig is the fully-resolved state of one run/all invocation.
type runConfig struct {
	opts          engine.Options
	cache         *cache.Executor // non-nil when -cache is set
	cacheDir      string          // resolved persistent cache directory (when -cache)
	prefetch      bool            // -prefetch: warm the cache from the plan first
	cpuProfile    string
	memProfile    string
	traceFile     string // -trace: Chrome trace_event JSON output path
	metricsListen string // -metrics-listen: /metrics scrape address for the run
}

// runOptions binds the shared run/all flags onto a FlagSet. After
// fs.Parse, finish() completes and returns the run configuration.
// withSets adds the per-scenario -set/-grid flags, which only make
// sense when running a single scenario.
func runOptions(fs *flag.FlagSet, withSets bool) (finish func() (runConfig, error)) {
	var cfg runConfig
	opts := &cfg.opts
	var sets, grid multiFlag
	fs.StringVar(&opts.Seed, "seed", "", "override the scenario's Seed parameter")
	fs.StringVar(&opts.Scale, "scale", "bench", "sampling effort: smoke, bench, or full")
	fs.IntVar(&opts.Parallel, "parallel", 0, "worker pool width (0 = GOMAXPROCS)")
	fs.StringVar(&opts.Sampler, "sampler", "", "sampling strategy: plain (default), antithetic, stratified, sobol, halton, cv, or auto")
	fs.StringVar(&opts.AutoTable, "auto-table", "", "with -sampler auto: persist per-kernel choices to this JSON table (default: <cache-dir>/sampler-choices.json when -cache is set)")
	fs.Float64Var(&opts.RelErr, "relerr", 0, "grow per-point budgets until this relative standard error is met")
	fs.IntVar(&opts.MaxSamples, "max-samples", 0, "per-point budget cap for -relerr (0 = the scenario's own budget)")
	workers := fs.String("workers", "", "distribute shards over cs serve workers (host:port,host:port,...)")
	wire := fs.String("wire", "auto", "shard transport with -workers: auto, json, or binary")
	shardTimeout := fs.Duration("shard-timeout", 0, "re-dispatch a shard batch unanswered for this long (0 = no deadline)")
	hedge := fs.Float64("hedge", 0, "with -workers: speculatively re-dispatch batches slower than this latency quantile (0 = off)")
	readmitBase := fs.Duration("readmit-base", 0, "with -workers: base probe delay for readmitting dead workers (0 = default; negative = off)")
	faultSpec := fs.String("fault", "", "deterministic fault schedule for this coordinator process (testing; see internal/fault)")
	useCache := fs.Bool("cache", false, "serve repeated kernel estimations from the persistent result cache")
	prefetch := fs.Bool("prefetch", false, "with -cache: evaluate every predicted cache miss before the real run")
	cacheDir := fs.String("cache-dir", "", "persistent cache directory (default: user cache dir)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "evict least-recently-used persistent entries beyond this size (0 = unbounded)")
	fs.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&cfg.memProfile, "memprofile", "", "write a heap profile to this file")
	fs.StringVar(&cfg.traceFile, "trace", "", "write a Chrome trace_event JSON timeline of the run to this file")
	fs.StringVar(&cfg.metricsListen, "metrics-listen", "", "serve Prometheus /metrics on this address for the duration of the run")
	fs.StringVar(&opts.OutDir, "out", "", "artifact directory (empty = stdout only)")
	if withSets {
		fs.Var(&sets, "set", "parameter override k=v (repeatable)")
		fs.Var(&grid, "grid", "parameter sweep axis k=v1,v2,... (repeatable)")
	}
	quiet := fs.Bool("quiet", false, "suppress the live text report")
	fs.Usage = func() { usage(fs.Output()) }
	return func() (runConfig, error) {
		opts.Sets = sets
		opts.Grid = grid
		if !*quiet {
			opts.Stdout = os.Stdout
		}
		if opts.Parallel < 0 {
			return cfg, fmt.Errorf("-parallel must be >= 1 (or 0 for the GOMAXPROCS default), got %d", opts.Parallel)
		}
		wireMode, err := dist.ParseWire(*wire)
		if err != nil {
			return cfg, err
		}
		if *shardTimeout < 0 {
			return cfg, fmt.Errorf("-shard-timeout must be >= 0, got %v", *shardTimeout)
		}
		if *hedge < 0 || *hedge >= 1 {
			return cfg, fmt.Errorf("-hedge must be a quantile in [0, 1), got %g", *hedge)
		}
		if *faultSpec != "" {
			// Coordinator-side faults: rules targeting "coord" (fleet
			// seams) or "cache" (disk-load bit flips). Worker-side rules
			// in the same schedule are inert here and belong on the
			// matching `cs serve -fault ... -fault-id <name>`.
			sched, err := fault.Parse(*faultSpec)
			if err != nil {
				return cfg, err
			}
			if p := sched.Plan("coord", "cache"); p != nil {
				fault.Install(p)
				fmt.Fprintf(os.Stderr, "fault injection armed: %s\n", p)
			}
		}
		readmit := *readmitBase
		if readmit < 0 {
			readmit = dist.ReadmitOff
		}
		var workerHosts []string
		if *workers != "" {
			hosts, err := dist.ParseWorkerList(*workers)
			if err != nil {
				return cfg, err
			}
			workerHosts = hosts
			remote, err := dist.NewRemote(hosts, dist.RemoteOptions{
				Wire: wireMode, ShardTimeout: *shardTimeout,
				HedgeQuantile: *hedge, ReadmitBase: readmit,
			})
			if err != nil {
				return cfg, err
			}
			opts.Executor = remote
		} else if wireMode != dist.WireAuto {
			return cfg, fmt.Errorf("-wire requires -workers")
		} else if *shardTimeout != 0 {
			return cfg, fmt.Errorf("-shard-timeout requires -workers")
		} else if *hedge != 0 {
			return cfg, fmt.Errorf("-hedge requires -workers")
		} else if *readmitBase != 0 {
			return cfg, fmt.Errorf("-readmit-base requires -workers")
		}
		if opts.Sampler != sampling.Auto {
			if err := sampling.Validate(opts.Sampler); err != nil {
				return cfg, err
			}
			if opts.AutoTable != "" {
				return cfg, fmt.Errorf("-auto-table requires -sampler auto")
			}
		}
		if *useCache {
			dir, err := resolveCacheDir(*cacheDir)
			if err != nil {
				return cfg, err
			}
			cfg.cacheDir = dir
			cfg.cache = cache.New(opts.Executor, cache.Options{Dir: dir, MaxBytes: *cacheMaxBytes})
			opts.Executor = cfg.cache
		} else if *cacheDir != "" {
			return cfg, fmt.Errorf("-cache-dir requires -cache")
		} else if *cacheMaxBytes != 0 {
			return cfg, fmt.Errorf("-cache-max-bytes requires -cache")
		}
		if opts.Sampler == sampling.Auto && opts.AutoTable == "" && cfg.cacheDir != "" {
			// Default the choice table into the cache directory: both are
			// KeyEpoch-scoped memoization of the same evaluation
			// semantics, and the non-hex name is invisible to the cache's
			// entry scans.
			opts.AutoTable = filepath.Join(cfg.cacheDir, "sampler-choices.json")
		}
		if *prefetch {
			if cfg.cache == nil {
				return cfg, fmt.Errorf("-prefetch requires -cache")
			}
			if opts.RelErr > 0 {
				// The planner cannot predict convergence rounds (its
				// placeholder estimates have zero variance structure), so
				// a -relerr prefetch would fetch the wrong miss set.
				return cfg, fmt.Errorf("-prefetch cannot predict -relerr convergence rounds; prefetch without -relerr")
			}
			cfg.prefetch = true
		}
		// Record the execution shape for provenance manifests: the
		// engine cannot see through the Executor interface, so the flag
		// layer that assembled the chain reports it here.
		opts.Exec = prov.ExecInfo{
			Parallel: opts.Parallel,
			Cache:    *useCache,
			CacheDir: cfg.cacheDir,
			Prefetch: cfg.prefetch,
			Fault:    *faultSpec,
		}
		if len(workerHosts) > 0 {
			opts.Exec.Workers = workerHosts
			opts.Exec.Wire = *wire
		}
		return cfg, nil
	}
}

// resolveCacheDir picks the persistent cache location: the explicit
// flag, or <user cache dir>/carriersense.
func resolveCacheDir(flagDir string) (string, error) {
	if flagDir != "" {
		return flagDir, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("no user cache dir (%v); pass -cache-dir", err)
	}
	return filepath.Join(base, "carriersense"), nil
}

// startProfiles starts the requested pprof profiles and returns a stop
// function that finishes them.
func startProfiles(cfg runConfig) (stop func() error, err error) {
	var cpuFile *os.File
	if cfg.cpuProfile != "" {
		cpuFile, err = os.Create(cfg.cpuProfile)
		if err != nil {
			return nil, fmt.Errorf("create -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if cfg.memProfile != "" {
			f, err := os.Create(cfg.memProfile)
			if err != nil {
				return fmt.Errorf("create -memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the end-of-run live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}

// startMetricsServer serves the process metric registry at /metrics on
// addr until the returned stop function is called. Scrapes during a
// run observe live counters; the endpoint exists only for the run's
// duration (long-lived scraping belongs on `cs serve` workers).
func startMetricsServer(addr string) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen -metrics-listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Default().Handler())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", ln.Addr())
	return func() { _ = srv.Close() }, nil
}

// runAndReport executes fn between profile start/stop and, unless the
// run is quiet, reports Monte Carlo throughput (and cache
// effectiveness when -cache is on). It also hosts the run-scoped
// observability surfaces: the -metrics-listen scrape endpoint and the
// -trace timeline, both of which observe the run without perturbing
// its deterministic artifacts.
func runAndReport(cfg runConfig, fn func() error) error {
	if cfg.metricsListen != "" {
		stopMetrics, err := startMetricsServer(cfg.metricsListen)
		if err != nil {
			return err
		}
		defer stopMetrics()
	}
	if cfg.traceFile != "" {
		obs.SetTracer(obs.NewTracer())
		defer obs.SetTracer(nil)
	}
	stop, err := startProfiles(cfg)
	if err != nil {
		return err
	}
	samples0 := montecarlo.EvaluatedSamples()
	start := time.Now()
	runErr := fn()
	elapsed := time.Since(start)
	if err := stop(); err != nil && runErr == nil {
		runErr = err
	}
	if cfg.traceFile != "" {
		tr := obs.CurrentTracer()
		if werr := tr.WriteFile(cfg.traceFile); werr != nil {
			if runErr == nil {
				runErr = fmt.Errorf("write -trace: %w", werr)
			}
		} else if cfg.opts.Stdout != nil {
			fmt.Fprintf(os.Stderr, "trace: %d events written to %s (load in https://ui.perfetto.dev)\n",
				tr.Len(), cfg.traceFile)
		}
	}
	// Throughput and cache diagnostics go to stderr: stdout stays
	// byte-stable for a fixed seed (the determinism contract users
	// check with `cs run ... > file && cmp`), and timing never is.
	if cfg.opts.Stdout != nil {
		if n := montecarlo.EvaluatedSamples() - samples0; n > 0 && elapsed > 0 {
			rate := float64(n) / elapsed.Seconds()
			fmt.Fprintf(os.Stderr, "evaluated %d MC samples in %s (%.3gM samples/sec)\n",
				n, elapsed.Round(time.Millisecond), rate/1e6)
		}
		if cfg.cache != nil {
			st := cfg.cache.Stats()
			fmt.Fprintf(os.Stderr, "cache: %d hits, %d disk hits, %d misses (%d entries in memory, %d disk evictions)\n",
				st.Hits, st.DiskHits, st.Misses, st.Entries, st.DiskEvictions)
		}
	}
	// Integrity damage is reported even under -quiet: a quarantined
	// entry means bits rotted on disk, which the operator should see
	// regardless of how chatty the run is.
	if cfg.cache != nil {
		if st := cfg.cache.Stats(); st.Corrupt > 0 {
			fmt.Fprintf(os.Stderr, "cache: %d corrupt disk entries quarantined and recomputed\n", st.Corrupt)
		}
	}
	return runErr
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	verbose := fs.Bool("v", false, "also list settable parameters with defaults")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, sc := range engine.Scenarios() {
		fmt.Printf("%-14s %s\n", sc.Name, sc.Description)
		fmt.Printf("%-14s   reproduces: %s\n", "", sc.Figures)
		if *verbose {
			for _, f := range engine.ParamFields(sc.NewParams()) {
				fmt.Printf("%-14s   -set %s=%s (%s)\n", "", f.Key, f.Default, f.Type)
			}
		}
	}
	return nil
}

func cmdHelp(name string) error {
	sc, ok := engine.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (try `cs list`)", name)
	}
	fmt.Printf("%s — %s\nreproduces: %s\n\nparameters:\n", sc.Name, sc.Description, sc.Figures)
	fields := engine.ParamFields(sc.NewParams())
	if len(fields) == 0 {
		fmt.Println("  (none beyond -scale)")
	}
	for _, f := range fields {
		fmt.Printf("  -set %s=%s  (%s)\n", f.Key, f.Default, f.Type)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	finish := runOptions(fs, true)
	plan := fs.Bool("plan", false, "with -cache: report which estimations are already cached, without running")
	if len(args) > 0 && (args[0] == "-h" || args[0] == "--help" || args[0] == "-help") {
		usage(os.Stdout)
		return nil
	}
	if len(args) == 0 || len(args[0]) == 0 || args[0][0] == '-' {
		return fmt.Errorf("usage: cs run <scenario> [flags]; see `cs list`")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	cfg, err := finish()
	if err != nil {
		return err
	}
	if *plan {
		return planRun(cfg, name)
	}
	if cfg.prefetch {
		if name == "sampling" {
			return fmt.Errorf("the sampling scenario drives its own local executor and is never cache-routed; nothing to prefetch")
		}
		if err := prefetchScenarios(cfg, []string{name}); err != nil {
			return err
		}
	}
	return runAndReport(cfg, func() error {
		_, err := engine.Run(context.Background(), name, cfg.opts)
		return err
	})
}

// prefetchScenarios is the -cache -prefetch pass: dry-run the named
// scenarios against the cache planner, then batch-evaluate every
// predicted miss through the caching executor (and therefore through
// -workers, when set) so the real run that follows is all cache hits.
// Diagnostics go to stderr; a prefetch failure is a warning, not a
// run-stopper — the real run evaluates whatever is still missing.
func prefetchScenarios(cfg runConfig, names []string) error {
	planner := cache.NewPlanner(cfg.cacheDir)
	opts := cfg.opts
	opts.Executor = planner
	opts.Stdout = nil // the dry run must not impersonate the real report
	opts.OutDir = ""
	var misses []montecarlo.Request
	for _, name := range names {
		planner.Reset()
		if err := planScenario(name, opts); err != nil {
			// A scenario choking on placeholder estimates still yields a
			// partial miss ledger; prefetch what was predicted.
			fmt.Fprintf(os.Stderr, "prefetch: plan for %s incomplete (%v); fetching what was predicted\n", name, err)
		}
		misses = append(misses, planner.Misses()...)
	}
	if len(misses) == 0 {
		fmt.Fprintln(os.Stderr, "prefetch: cache already warm; nothing to fetch")
		return nil
	}
	start := time.Now()
	rep, err := cache.Prefetch(context.Background(), cfg.cache, misses)
	if err != nil {
		if rep.Fetched == 0 && rep.Skipped == 0 {
			// Nothing warmed at all — the run would hit the same wall
			// (dead fleet, bad kernel); fail now with the real cause.
			return fmt.Errorf("prefetch: %w", err)
		}
		fmt.Fprintf(os.Stderr, "prefetch: %d of %d fetches failed (%v); the run will evaluate them\n",
			rep.Failed, rep.Planned, err)
	}
	fmt.Fprintf(os.Stderr, "prefetch: %d predicted misses, %d fetched (%d samples), %d already present in %s\n",
		rep.Planned, rep.Fetched, rep.Samples, rep.Skipped, time.Since(start).Round(time.Millisecond))
	return nil
}

// planRun is `cs run <scenario> -cache -plan`: replay one scenario —
// including its -grid cross product and -set overrides — against the
// cache.Planner dry-run executor and report, per kernel, how much of
// the run is already paid for. The single-scenario counterpart of
// `cs all -cache -plan` (ROADMAP: cache-aware orchestration).
func planRun(cfg runConfig, name string) error {
	if cfg.cache == nil {
		return fmt.Errorf("-plan requires -cache")
	}
	if cfg.opts.RelErr > 0 {
		// A convergence-driven run issues rounds until the *values*
		// converge; a dry run with zero-mean placeholders would spin
		// every point to its cap and report nonsense.
		return fmt.Errorf("-plan cannot predict -relerr convergence rounds; plan without -relerr")
	}
	if name == "sampling" {
		return fmt.Errorf("the sampling scenario drives its own local executor and is never cache-routed; nothing to plan")
	}
	planner := cache.NewPlanner(cfg.cacheDir)
	opts := cfg.opts
	opts.Executor = planner
	opts.Stdout = nil // the plan is the output, not the scenario report
	opts.OutDir = ""
	err := planScenario(name, opts)
	entries := planner.Entries()
	fmt.Printf("cache plan for %s (%s):\n", name, cfg.cacheDir)
	// Per-kernel ledger, in first-appearance order.
	type kernelPlan struct {
		requests, cached int
		samplesToEval    int64
	}
	perKernel := map[string]*kernelPlan{}
	var order []string
	for _, e := range entries {
		kp := perKernel[e.Kernel]
		if kp == nil {
			kp = &kernelPlan{}
			perKernel[e.Kernel] = kp
			order = append(order, e.Kernel)
		}
		kp.requests++
		if e.Cached {
			kp.cached++
		} else {
			kp.samplesToEval += int64(e.Samples)
		}
	}
	for _, k := range order {
		kp := perKernel[k]
		switch {
		case kp.cached == kp.requests:
			fmt.Printf("  %-20s %4d estimations, all cached — free\n", k, kp.requests)
		default:
			fmt.Printf("  %-20s %4d estimations, %4d cached, %4d to evaluate (~%d samples)\n",
				k, kp.requests, kp.cached, kp.requests-kp.cached, kp.samplesToEval)
		}
	}
	s := planner.Summarize()
	switch {
	case s.Requests == 0:
		fmt.Println("  no kernel estimations (unaffected by the cache)")
	default:
		fmt.Printf("total: %d estimations, %d cached, %d to evaluate (~%d samples)\n",
			s.Requests, s.Cached, s.ToEvaluate, s.SamplesToEval)
	}
	if err != nil {
		// A scenario choking on placeholder estimates still yields a
		// partial ledger; report it rather than abort.
		fmt.Printf("(plan incomplete: %v)\n", err)
	}
	return nil
}

// cmdCache inspects or empties the persistent result cache used by
// `cs run -cache` / `cs all -cache`.
func cmdCache(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: cs cache stats|clear [-cache-dir DIR]")
	}
	sub := args[0]
	fs := flag.NewFlagSet("cache "+sub, flag.ExitOnError)
	cacheDir := fs.String("cache-dir", "", "persistent cache directory (default: user cache dir)")
	fs.Usage = func() { usage(fs.Output()) }
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	dir, err := resolveCacheDir(*cacheDir)
	if err != nil {
		return err
	}
	switch sub {
	case "stats":
		st, err := cache.StatDir(dir)
		if err != nil {
			return err
		}
		fmt.Printf("cache dir: %s\nentries:   %d\nsize:      %d bytes\nkey epoch: %d\n", st.Dir, st.Entries, st.Bytes, cache.KeyEpoch)
		if st.Quarantined > 0 {
			fmt.Printf("quarantined: %d corrupt entries under %s/\n", st.Quarantined, cache.QuarantineDir)
		}
		return nil
	case "clear":
		removed, err := cache.ClearDir(dir)
		if err != nil {
			return err
		}
		fmt.Printf("removed %d cache entries from %s\n", removed, dir)
		return nil
	default:
		return fmt.Errorf("unknown cache command %q (want stats or clear)", sub)
	}
}

// planAll is `cs all -cache -plan`: replay every scenario against a
// dry-run executor that diffs each estimation request against the
// persistent cache instead of evaluating it, then report which
// scenarios will be free before any real work is spent. Misses return
// zero-mean placeholders, so a scenario whose control flow depends on
// estimate *values* (threshold searches) may issue a slightly
// different request mix than the real run — the plan is exact when
// everything hits and an approximation otherwise.
func planAll(cfg runConfig) error {
	planner := cache.NewPlanner(cfg.cacheDir)
	opts := cfg.opts
	opts.Executor = planner
	opts.Stdout = nil // the plan is the output, not the scenario reports
	opts.OutDir = ""
	var total cache.PlanSummary
	fmt.Printf("cache plan (%s):\n", cfg.cacheDir)
	for _, sc := range engine.Scenarios() {
		if sc.Name == "report" {
			continue
		}
		if sc.Name == "sampling" {
			// The sampler shoot-out installs its own local driver (the
			// evaluation work *is* its benchmark), so it neither reads
			// the cache nor belongs in a dry run.
			fmt.Printf("  %-14s skipped (drives its own local executor; never cache-routed)\n", sc.Name)
			continue
		}
		planner.Reset()
		err := planScenario(sc.Name, opts)
		s := planner.Summarize()
		switch {
		case err != nil:
			// A scenario choking on placeholder estimates still yields
			// a partial ledger; report it rather than abort the plan.
			fmt.Printf("  %-14s %3d estimations, %3d cached, %3d to evaluate (plan incomplete: %v)\n",
				sc.Name, s.Requests, s.Cached, s.ToEvaluate, err)
		case s.Requests == 0:
			fmt.Printf("  %-14s no kernel estimations (unaffected by the cache)\n", sc.Name)
		case s.ToEvaluate == 0:
			fmt.Printf("  %-14s %3d estimations, all cached — free\n", sc.Name, s.Requests)
		default:
			fmt.Printf("  %-14s %3d estimations, %3d cached, %3d to evaluate (~%d samples)\n",
				sc.Name, s.Requests, s.Cached, s.ToEvaluate, s.SamplesToEval)
		}
		total.Requests += s.Requests
		total.Cached += s.Cached
		total.ToEvaluate += s.ToEvaluate
		total.SamplesCached += s.SamplesCached
		total.SamplesToEval += s.SamplesToEval
	}
	fmt.Printf("total: %d estimations, %d cached, %d to evaluate (~%d samples)\n",
		total.Requests, total.Cached, total.ToEvaluate, total.SamplesToEval)
	return nil
}

// planScenario runs one scenario against the planning executor,
// containing any panic a placeholder estimate provokes so the rest of
// the plan still prints.
func planScenario(name string, opts engine.Options) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	_, err = engine.Run(context.Background(), name, opts)
	return err
}

// cmdServe runs a distributed shard worker: an HTTP server that
// evaluates Monte Carlo shard batches against the kernel registry
// compiled into this binary. Coordinators reach it via
// `cs run <scenario> -workers host:port,...`.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":8031", "listen address (host:port)")
	parallel := fs.Int("parallel", 0, "per-request worker pool width (0 = GOMAXPROCS)")
	faultSpec := fs.String("fault", "", "deterministic fault schedule for this worker (testing; see internal/fault)")
	faultID := fs.String("fault-id", "", "name this worker answers to in the -fault schedule")
	traceFile := fs.String("trace", "", "write this worker's Chrome trace_event timeline here on graceful drain")
	fs.Usage = func() { usage(fs.Output()) }
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 0 {
		return fmt.Errorf("-parallel must be >= 1 (or 0 for the GOMAXPROCS default), got %d", *parallel)
	}
	if *faultID != "" && *faultSpec == "" {
		return fmt.Errorf("-fault-id requires -fault")
	}
	if *faultSpec != "" {
		if *faultID == "" {
			return fmt.Errorf("-fault requires -fault-id so this worker knows which schedule rules are its own")
		}
		sched, err := fault.Parse(*faultSpec)
		if err != nil {
			return err
		}
		if p := sched.Plan(*faultID); p != nil {
			fault.Install(p)
			fmt.Fprintf(os.Stderr, "fault injection armed for %s: %s\n", *faultID, p)
		}
	}
	if *parallel > 0 {
		if err := montecarlo.SetMaxWorkers(*parallel); err != nil {
			return err
		}
	}
	// SIGINT/SIGTERM drain rather than kill: in-flight shard batches
	// (JSON and stream alike) finish and deliver, streams close with a
	// goodbye frame so coordinators re-dispatch cleanly, then Serve
	// returns nil. A second signal falls through to the default
	// handler and kills the process the old way.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	// Worker-side tracing: the coordinator's -trace timeline only shows
	// dispatch latency; a worker arms its own tracer here and exports
	// the spans of every batch it evaluated when the drain completes,
	// so fleet timelines exist on both ends of the wire.
	if *traceFile != "" {
		obs.SetTracer(obs.NewTracer())
		defer obs.SetTracer(nil)
	}
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- dist.Serve(ctx, *listen, ready) }()
	select {
	case addr := <-ready:
		fmt.Fprintf(os.Stderr, "cs worker listening on %s (%d kernels; endpoints %s %s %s %s %s)\n",
			addr, len(montecarlo.KernelNames()), dist.PathShards, dist.PathStream, dist.PathHealthz, dist.PathStats, dist.PathMetrics)
	case err := <-errc:
		return err
	}
	err := <-errc
	if err == nil && ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "cs worker drained in-flight shard batches and stopped")
	}
	if err == nil && *traceFile != "" {
		tr := obs.CurrentTracer()
		if werr := tr.WriteFile(*traceFile); werr != nil {
			return fmt.Errorf("write -trace: %w", werr)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s (load in https://ui.perfetto.dev)\n",
			tr.Len(), *traceFile)
	}
	return err
}

func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	finish := runOptions(fs, false)
	plan := fs.Bool("plan", false, "with -cache: report which estimations are already cached, without running")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := finish()
	if err != nil {
		return err
	}
	if *plan {
		if cfg.cache == nil {
			return fmt.Errorf("-plan requires -cache")
		}
		if cfg.opts.RelErr > 0 {
			// A convergence-driven run issues rounds until the *values*
			// converge; a dry run with zero-mean placeholders would spin
			// every point to its cap and report nonsense. Plan the
			// fixed-budget shape instead.
			return fmt.Errorf("-plan cannot predict -relerr convergence rounds; plan without -relerr")
		}
		return planAll(cfg)
	}
	if cfg.prefetch {
		var names []string
		for _, sc := range engine.Scenarios() {
			// report re-runs the catalog; sampling drives its own local
			// executor and never routes through the cache.
			if sc.Name == "report" || sc.Name == "sampling" {
				continue
			}
			names = append(names, sc.Name)
		}
		if err := prefetchScenarios(cfg, names); err != nil {
			return err
		}
	}
	return runAndReport(cfg, func() error {
		for _, sc := range engine.Scenarios() {
			// The report scenario re-runs the whole catalog; running it
			// inside `cs all` would execute everything twice.
			if sc.Name == "report" {
				continue
			}
			if cfg.opts.Stdout != nil {
				fmt.Fprintf(cfg.opts.Stdout, "=== %s ===\n", sc.Name)
			}
			if _, err := engine.Run(context.Background(), sc.Name, cfg.opts); err != nil {
				return err
			}
			if cfg.opts.Stdout != nil {
				fmt.Fprintln(cfg.opts.Stdout)
			}
		}
		return nil
	})
}
