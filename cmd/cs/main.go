// Command cs is the unified CLI over the scenario engine. It replaces
// the former cscurves, csthreshold, cslandscape, cstables, csmulti,
// cstestbed, csfit, and csreport binaries with one scenario catalog.
//
// Usage:
//
//	cs list [-v]
//	cs run <scenario> [-seed S] [-scale smoke|bench|full] [-parallel N]
//	                  [-workers host:port,...] [-set k=v ...]
//	                  [-grid k=v1,v2,... ...] [-out dir] [-quiet]
//	cs all [-seed S] [-scale ...] [-parallel N] [-workers ...] [-out dir] [-quiet]
//	cs serve [-listen :8031] [-parallel N]
//	cs help <scenario>
//
// Determinism: for a fixed -seed and -scale, `cs run` output is
// bit-identical at any -parallel width — random streams are assigned
// per fixed-size Monte Carlo shard, never per worker — and at any
// -workers fleet size, because the distributed executor merges shard
// accumulator states in shard order.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"

	"carriersense/internal/dist"
	"carriersense/internal/engine"
	_ "carriersense/internal/experiments" // registers the scenario catalog
	"carriersense/internal/montecarlo"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "all":
		err = cmdAll(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "help", "-h", "--help":
		if len(os.Args) > 2 {
			err = cmdHelp(os.Args[2])
		} else {
			usage(os.Stdout)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `cs — carrier sense reproduction scenario engine

commands:
  cs list [-v]              list registered scenarios (-v: settable params)
  cs run <scenario> [...]   run one scenario
  cs all [...]              run every scenario
  cs serve [-listen :8031]  run a distributed shard worker
  cs help <scenario>        describe one scenario and its parameters

run/all flags:
  -seed S        override the scenario's Seed parameter
  -scale LEVEL   sampling effort: smoke, bench (default), or full
  -parallel N    Monte Carlo worker pool width (default GOMAXPROCS);
                 results are bit-identical at any width
  -workers LIST  distribute Monte Carlo shards over cs serve workers
                 (comma-separated host:port list); results are
                 bit-identical to a local run at any fleet size
  -out DIR       write artifacts (output.txt, result.json, *.csv) into a
                 timestamped run directory under DIR
  -quiet         suppress the live text report on stdout

run-only flags:
  -set k=v       override one parameter (repeatable; dotted keys reach
                 nested structs, e.g. -set layout.nodes=30)
  -grid k=v1,v2  sweep a parameter axis (repeatable; axes cross-multiply)

"cs all" runs every scenario except report (which is itself the whole
catalog in one document).`)
}

// multiFlag collects repeatable -set / -grid values.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// runOptions binds the shared run/all flags onto a FlagSet. After
// fs.Parse, finish() completes and returns the engine options.
// withSets adds the per-scenario -set/-grid flags, which only make
// sense when running a single scenario.
func runOptions(fs *flag.FlagSet, withSets bool) (finish func() (engine.Options, error)) {
	var opts engine.Options
	var sets, grid multiFlag
	fs.StringVar(&opts.Seed, "seed", "", "override the scenario's Seed parameter")
	fs.StringVar(&opts.Scale, "scale", "bench", "sampling effort: smoke, bench, or full")
	fs.IntVar(&opts.Parallel, "parallel", 0, "worker pool width (0 = GOMAXPROCS)")
	workers := fs.String("workers", "", "distribute shards over cs serve workers (host:port,host:port,...)")
	fs.StringVar(&opts.OutDir, "out", "", "artifact directory (empty = stdout only)")
	if withSets {
		fs.Var(&sets, "set", "parameter override k=v (repeatable)")
		fs.Var(&grid, "grid", "parameter sweep axis k=v1,v2,... (repeatable)")
	}
	quiet := fs.Bool("quiet", false, "suppress the live text report")
	fs.Usage = func() { usage(fs.Output()) }
	return func() (engine.Options, error) {
		opts.Sets = sets
		opts.Grid = grid
		if !*quiet {
			opts.Stdout = os.Stdout
		}
		if opts.Parallel < 0 {
			return opts, fmt.Errorf("-parallel must be >= 1 (or 0 for the GOMAXPROCS default), got %d", opts.Parallel)
		}
		if *workers != "" {
			hosts, err := dist.ParseWorkerList(*workers)
			if err != nil {
				return opts, err
			}
			remote, err := dist.NewRemote(hosts)
			if err != nil {
				return opts, err
			}
			opts.Executor = remote
		}
		return opts, nil
	}
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	verbose := fs.Bool("v", false, "also list settable parameters with defaults")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, sc := range engine.Scenarios() {
		fmt.Printf("%-14s %s\n", sc.Name, sc.Description)
		fmt.Printf("%-14s   reproduces: %s\n", "", sc.Figures)
		if *verbose {
			for _, f := range engine.ParamFields(sc.NewParams()) {
				fmt.Printf("%-14s   -set %s=%s (%s)\n", "", f.Key, f.Default, f.Type)
			}
		}
	}
	return nil
}

func cmdHelp(name string) error {
	sc, ok := engine.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (try `cs list`)", name)
	}
	fmt.Printf("%s — %s\nreproduces: %s\n\nparameters:\n", sc.Name, sc.Description, sc.Figures)
	fields := engine.ParamFields(sc.NewParams())
	if len(fields) == 0 {
		fmt.Println("  (none beyond -scale)")
	}
	for _, f := range fields {
		fmt.Printf("  -set %s=%s  (%s)\n", f.Key, f.Default, f.Type)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	finish := runOptions(fs, true)
	if len(args) > 0 && (args[0] == "-h" || args[0] == "--help" || args[0] == "-help") {
		usage(os.Stdout)
		return nil
	}
	if len(args) == 0 || len(args[0]) == 0 || args[0][0] == '-' {
		return fmt.Errorf("usage: cs run <scenario> [flags]; see `cs list`")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	opts, err := finish()
	if err != nil {
		return err
	}
	_, err = engine.Run(context.Background(), name, opts)
	return err
}

// cmdServe runs a distributed shard worker: an HTTP server that
// evaluates Monte Carlo shard batches against the kernel registry
// compiled into this binary. Coordinators reach it via
// `cs run <scenario> -workers host:port,...`.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":8031", "listen address (host:port)")
	parallel := fs.Int("parallel", 0, "per-request worker pool width (0 = GOMAXPROCS)")
	fs.Usage = func() { usage(fs.Output()) }
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 0 {
		return fmt.Errorf("-parallel must be >= 1 (or 0 for the GOMAXPROCS default), got %d", *parallel)
	}
	if *parallel > 0 {
		if err := montecarlo.SetMaxWorkers(*parallel); err != nil {
			return err
		}
	}
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- dist.ListenAndServe(*listen, ready) }()
	select {
	case addr := <-ready:
		fmt.Fprintf(os.Stderr, "cs worker listening on %s (%d kernels; endpoints %s %s %s)\n",
			addr, len(montecarlo.KernelNames()), dist.PathShards, dist.PathHealthz, dist.PathStats)
	case err := <-errc:
		return err
	}
	return <-errc
}

func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	finish := runOptions(fs, false)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := finish()
	if err != nil {
		return err
	}
	for _, sc := range engine.Scenarios() {
		// The report scenario re-runs the whole catalog; running it
		// inside `cs all` would execute everything twice.
		if sc.Name == "report" {
			continue
		}
		if opts.Stdout != nil {
			fmt.Fprintf(opts.Stdout, "=== %s ===\n", sc.Name)
		}
		if _, err := engine.Run(context.Background(), sc.Name, opts); err != nil {
			return err
		}
		if opts.Stdout != nil {
			fmt.Fprintln(opts.Stdout)
		}
	}
	return nil
}
