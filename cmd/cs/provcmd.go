package main

// Provenance-facing subcommands: `cs verify` (re-check run directories
// against their manifests), `cs exp` (declarative experiment grids
// with stamped repeats and manifest-driven analysis), and `cs bench
// diff` (lane-by-lane comparison of two BENCH_*.json snapshots, the
// CI regression gate).

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"carriersense/internal/exp"
	"carriersense/internal/prov"
)

// cmdVerify is `cs verify DIR...`: each argument is either a run
// directory (containing manifest.json) or a parent tree whose
// manifested run directories are discovered recursively. Any tamper,
// drift, or missing manifest exits nonzero.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	quiet := fs.Bool("quiet", false, "report only failures")
	fs.Usage = func() { usage(fs.Output()) }
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: cs verify RUNDIR...")
	}
	var checked, failed int
	for _, root := range fs.Args() {
		dirs, err := verifyTargets(root)
		if err != nil {
			return err
		}
		for _, dir := range dirs {
			checked++
			m, err := prov.VerifyDir(dir)
			if err != nil {
				failed++
				fmt.Fprintf(os.Stderr, "FAIL %v\n", err)
				continue
			}
			if !*quiet {
				rev := m.VCS.Revision
				if len(rev) > 12 {
					rev = rev[:12]
				}
				if rev == "" {
					rev = "unknown-rev"
				}
				fmt.Printf("ok   %s  (%s, %d artifacts, %s)\n", dir, m.Scenario, len(m.Artifacts), rev)
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("cs verify: %d of %d run dirs failed verification", failed, checked)
	}
	if !*quiet {
		fmt.Printf("cs verify: %d run dirs ok\n", checked)
	}
	return nil
}

// verifyTargets resolves one CLI argument to run directories: itself
// when it holds a manifest, otherwise every manifested directory
// beneath it. A tree with no manifests at all is an error — silence
// would read as "verified".
func verifyTargets(root string) ([]string, error) {
	if _, err := os.Stat(filepath.Join(root, prov.ManifestName)); err == nil {
		return []string{root}, nil
	}
	dirs, err := prov.FindManifests(root)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("cs verify: no %s found under %s", prov.ManifestName, root)
	}
	return dirs, nil
}

// cmdExp dispatches the experiment-pipeline family.
func cmdExp(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: cs exp run -grid experiments.json -out DIR [run flags]\n       cs exp analyze DIR")
	}
	switch args[0] {
	case "run":
		return cmdExpRun(args[1:])
	case "analyze":
		return cmdExpAnalyze(args[1:])
	default:
		return fmt.Errorf("unknown exp command %q (want run or analyze)", args[0])
	}
}

// cmdExpRun executes a declarative grid through the same executor
// seams as `cs run` — fleet, cache, fault, and trace flags all apply;
// the grid supplies the per-experiment identity knobs (scenario,
// repeats, seed, scale, sampler, sets, grid axes).
func cmdExpRun(args []string) error {
	fs := flag.NewFlagSet("exp run", flag.ExitOnError)
	gridPath := fs.String("grid", "experiments.json", "experiments grid file")
	finish := runOptions(fs, false)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := finish()
	if err != nil {
		return err
	}
	if cfg.opts.OutDir == "" {
		return fmt.Errorf("cs exp run: -out DIR required (runs are only useful as stamped artifacts)")
	}
	if cfg.prefetch {
		return fmt.Errorf("cs exp run: -prefetch is not supported under exp (warm the cache with `cs all -cache -prefetch` first)")
	}
	g, err := exp.LoadGrid(*gridPath)
	if err != nil {
		return err
	}
	out := cfg.opts.OutDir
	base := cfg.opts
	base.OutDir = "" // exp places each run under out/<experiment>/
	return runAndReport(cfg, func() error {
		dirs, err := exp.RunGrid(context.Background(), g, exp.RunOptions{
			Out:  out,
			Base: base,
			Log:  os.Stderr,
		})
		if err != nil {
			return err
		}
		if cfg.opts.Stdout != nil {
			fmt.Printf("%d stamped runs under %s; next: cs verify %s && cs exp analyze %s\n",
				len(dirs), out, out, out)
		}
		return nil
	})
}

func cmdExpAnalyze(args []string) error {
	fs := flag.NewFlagSet("exp analyze", flag.ExitOnError)
	quiet := fs.Bool("quiet", false, "suppress per-run verification lines")
	fs.Usage = func() { usage(fs.Output()) }
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cs exp analyze DIR")
	}
	var log io.Writer
	if !*quiet {
		log = os.Stderr
	}
	return exp.Analyze(fs.Arg(0), log)
}

// gateFlag collects repeatable -gate lane=maxfrac values.
type gateFlag map[string]float64

func (g gateFlag) String() string { return fmt.Sprint(map[string]float64(g)) }
func (g gateFlag) Set(v string) error {
	lane, frac, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want lane=maxfrac, e.g. sim.allocs_per_event=0.5")
	}
	f, err := strconv.ParseFloat(frac, 64)
	if err != nil {
		return fmt.Errorf("bad gate fraction %q: %v", frac, err)
	}
	g[lane] = f
	return nil
}

// cmdBench is `cs bench diff OLD.json NEW.json`: the perf-trajectory
// comparator over two BENCH_*.json snapshots.
func cmdBench(args []string) error {
	if len(args) < 1 || args[0] != "diff" {
		return fmt.Errorf("usage: cs bench diff [-threshold F] [-gate lane=maxfrac ...] [-all] [-o FILE] OLD.json NEW.json")
	}
	fs := flag.NewFlagSet("bench diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.10, "report lanes whose regression or improvement exceeds this fraction")
	all := fs.Bool("all", false, "report every lane regardless of threshold")
	outPath := fs.String("o", "", "write the markdown report to this file instead of stdout")
	gates := gateFlag{}
	fs.Var(&gates, "gate", "fail when lane regresses more than maxfrac (repeatable, lane=maxfrac)")
	fs.Usage = func() { usage(fs.Output()) }
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: cs bench diff [flags] OLD.json NEW.json")
	}
	oldS, err := prov.LoadBench(fs.Arg(0))
	if err != nil {
		return err
	}
	newS, err := prov.LoadBench(fs.Arg(1))
	if err != nil {
		return err
	}
	d := prov.DiffSnapshots(oldS, newS, prov.DiffOptions{
		ReportThreshold: *threshold,
		All:             *all,
		Gates:           gates,
	})
	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := d.WriteMarkdown(out); err != nil {
		return err
	}
	if len(d.GateFailures) > 0 {
		return fmt.Errorf("cs bench diff: %d gated lane(s) regressed past their threshold", len(d.GateFailures))
	}
	return nil
}
