// Command cslandscape renders Figure 2's capacity landscapes and
// Figure 3's receiver preference maps as ASCII heatmaps.
//
// Usage:
//
//	cslandscape [-pref] [-cells 56]
package main

import (
	"flag"
	"os"

	"carriersense/internal/experiments"
)

func main() {
	pref := flag.Bool("pref", false, "render Figure 3 preference maps instead of Figure 2 landscapes")
	cells := flag.Int("cells", 56, "raster cells per side")
	flag.Parse()

	p := experiments.DefaultLandscape()
	p.Cells = *cells
	if *pref {
		experiments.Preference(p).Render(os.Stdout)
		return
	}
	experiments.Landscape(p).Render(os.Stdout)
}
