// Command cstables regenerates the §3.2.5 carrier sense efficiency
// tables (T1, T2) and the environment robustness sweep (T3).
//
// Usage:
//
//	cstables [-scale smoke|bench|full] [-sweep]
package main

import (
	"flag"
	"fmt"
	"os"

	"carriersense/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "bench", "sampling effort: smoke, bench, or full")
	sweep := flag.Bool("sweep", false, "also run the alpha/sigma robustness sweep (T3)")
	flag.Parse()
	scale, err := parseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	t1 := experiments.Table1(experiments.DefaultTable1(), scale)
	t1.Render(os.Stdout, "T1: CS % of optimal, fixed Dthresh=55, alpha=3, sigma=8dB\n(paper: 96 88 96 / 96 87 96 / 89 83 92)")
	fmt.Println()
	t2 := experiments.Table2(experiments.DefaultTable1(), scale)
	t2.Render(os.Stdout, "T2: CS % of optimal, per-Rmax optimized thresholds\n(paper: Dthresh 40/55/60; 93 91 99 / 96 87 96 / 89 83 92)")
	fmt.Println()
	fmt.Printf("minimum cell: %.0f%% (paper claim: typically <15%% below optimal)\n", 100*t1.Min())

	if *sweep {
		fmt.Println()
		pts := experiments.RobustnessSweep([]float64{2, 2.5, 3, 3.5, 4}, []float64{4, 8, 12}, scale)
		experiments.RenderRobustness(os.Stdout, pts)
	}
}

func parseScale(s string) (experiments.Scale, error) {
	switch s {
	case "smoke":
		return experiments.ScaleSmoke, nil
	case "bench":
		return experiments.ScaleBench, nil
	case "full":
		return experiments.ScaleFull, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want smoke, bench, or full)", s)
	}
}
