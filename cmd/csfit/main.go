// Command csfit reproduces Figure 14: the censored maximum-likelihood
// fit of the path loss / shadowing model to the testbed's RSSI census.
//
// Usage:
//
//	csfit [-seed 42] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"carriersense/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "building seed")
	csv := flag.Bool("csv", false, "emit scatter CSV instead of a chart")
	flag.Parse()

	p := experiments.DefaultFigure14()
	p.Seed = *seed
	res, err := experiments.Figure14(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	chart := res.Chart()
	if *csv {
		if err := chart.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	chart.Render(os.Stdout, 90, 24)
	fmt.Println()
	res.Render(os.Stdout)
}
