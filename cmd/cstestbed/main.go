// Command cstestbed reproduces the paper's §4 testbed experiments on
// the synthetic building: Figures 10/11 (short range), 12/13 (long
// range), the §4.1/§4.2 summary tables, and the §5 exposed-terminal
// study.
//
// Usage:
//
//	cstestbed [-range short|long|both] [-seconds 15] [-combos 40]
//	          [-seed 42] [-exposed] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"carriersense/internal/experiments"
	"carriersense/internal/sim"
	"carriersense/internal/testbed"
)

func main() {
	rangeFlag := flag.String("range", "both", "short, long, or both")
	seconds := flag.Float64("seconds", 15, "per-run send duration in simulated seconds (paper: 15)")
	combos := flag.Int("combos", 40, "two-pair combinations to measure per class")
	seed := flag.Uint64("seed", 42, "building and experiment seed")
	exposed := flag.Bool("exposed", false, "also run the §5 exposed-terminal study")
	csv := flag.Bool("csv", false, "emit per-combo CSV instead of charts")
	flag.Parse()

	p := experiments.DefaultTestbed(experiments.ScaleFull)
	p.Experiment.Duration = sim.FromSeconds(*seconds)
	p.Experiment.MaxCombos = *combos
	p.Seed = *seed

	classes := []testbed.RangeClass{}
	switch *rangeFlag {
	case "short":
		classes = append(classes, testbed.ShortRange)
	case "long":
		classes = append(classes, testbed.LongRange)
	case "both":
		classes = append(classes, testbed.ShortRange, testbed.LongRange)
	default:
		fmt.Fprintf(os.Stderr, "unknown -range %q\n", *rangeFlag)
		os.Exit(2)
	}

	for _, class := range classes {
		res := experiments.RunTestbed(p, class)
		if *csv {
			fmt.Printf("class,rssi_db,mux,conc,cs,optimal\n")
			for _, c := range res.Result.Combos {
				fmt.Printf("%s,%.1f,%.0f,%.0f,%.0f,%.0f\n",
					class, c.SenderRSSIdB, c.Mux, c.Conc, c.CS, c.Optimal())
			}
			continue
		}
		cchart := res.CompetitiveChart()
		cchart.Render(os.Stdout, 90, 24)
		fmt.Println()
		rchart := res.RSSIChart()
		rchart.Render(os.Stdout, 90, 24)
		fmt.Println()
		res.RenderSummary(os.Stdout)
		fmt.Println()
	}

	if *exposed {
		experiments.ExposedTerminals(p).Render(os.Stdout)
	}
}
