// Command cscurves regenerates the average-throughput-versus-D curves:
// Figure 4 (σ=0), Figure 5 (carrier sense piecewise curve), Figure 6
// (inefficiency decomposition) and Figure 9 (σ=8 dB overlay).
//
// Usage:
//
//	cscurves [-rmax 55] [-sigma 0] [-dthresh 55] [-scale bench]
//	         [-inefficiency] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"carriersense/internal/experiments"
)

func main() {
	rmax := flag.Float64("rmax", 55, "network radius Rmax (paper panels: 20, 55, 120)")
	sigma := flag.Float64("sigma", 0, "shadowing sigma in dB (0 = Figure 4/5/6, 8 = Figure 9)")
	dthresh := flag.Float64("dthresh", 55, "carrier sense threshold distance")
	scaleFlag := flag.String("scale", "bench", "sampling effort: smoke, bench, or full")
	ineff := flag.Bool("inefficiency", false, "also print the Figure 6 decomposition")
	csv := flag.Bool("csv", false, "emit CSV instead of an ASCII chart")
	flag.Parse()
	scale, err := parseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	p := experiments.DefaultCurves(*rmax)
	p.SigmaDB = *sigma
	p.DThresh = *dthresh
	res := experiments.Curves(p, scale)
	chart := res.Chart(true)
	if *csv {
		if err := chart.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		chart.Render(os.Stdout, 90, 24)
		fmt.Printf("concurrency/multiplexing crossover (optimal threshold) at D ~= %.0f\n", res.CrossoverD())
	}

	if *ineff {
		fmt.Println()
		experiments.InefficiencyDecomposition(p, scale).Render(os.Stdout)
	}
}

func parseScale(s string) (experiments.Scale, error) {
	switch s {
	case "smoke":
		return experiments.ScaleSmoke, nil
	case "bench":
		return experiments.ScaleBench, nil
	case "full":
		return experiments.ScaleFull, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want smoke, bench, or full)", s)
	}
}
