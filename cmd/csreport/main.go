// Command csreport runs every experiment in the DESIGN.md index and
// writes a consolidated reproduction report to stdout — the generator
// behind EXPERIMENTS.md.
//
// Usage:
//
//	csreport [-scale smoke|bench|full]
package main

import (
	"flag"
	"fmt"
	"os"

	"carriersense/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "bench", "sampling effort: smoke, bench, or full")
	flag.Parse()
	var scale experiments.Scale
	switch *scaleFlag {
	case "smoke":
		scale = experiments.ScaleSmoke
	case "bench":
		scale = experiments.ScaleBench
	case "full":
		scale = experiments.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want smoke, bench, or full)\n", *scaleFlag)
		os.Exit(2)
	}
	experiments.Report(os.Stdout, scale)
}
