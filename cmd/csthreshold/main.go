// Command csthreshold regenerates Figure 7: the optimal carrier sense
// threshold versus network radius for several path loss exponents,
// with the short/long-range regime boundaries and the footnote 13
// closed-form asymptote.
//
// Usage:
//
//	csthreshold [-scale bench] [-sigma 8] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"carriersense/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "bench", "sampling effort: smoke, bench, or full")
	sigma := flag.Float64("sigma", 8, "shadowing sigma in dB")
	csv := flag.Bool("csv", false, "emit CSV instead of an ASCII chart")
	flag.Parse()
	scale, err := parseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	p := experiments.DefaultFigure7()
	p.SigmaDB = *sigma
	res := experiments.Figure7(p, scale)
	chart := res.Chart()
	if *csv {
		if err := chart.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	chart.Render(os.Stdout, 90, 26)
	fmt.Println()
	res.RegimeTable(os.Stdout)
}

func parseScale(s string) (experiments.Scale, error) {
	switch s {
	case "smoke":
		return experiments.ScaleSmoke, nil
	case "bench":
		return experiments.ScaleBench, nil
	case "full":
		return experiments.ScaleFull, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want smoke, bench, or full)", s)
	}
}
